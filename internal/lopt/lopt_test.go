package lopt

import (
	"math"
	"math/rand"
	"testing"

	"hlpower/internal/bitutil"
	"hlpower/internal/fsm"
	"hlpower/internal/logic"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

func TestComparatorTT(t *testing.T) {
	tt := ComparatorTT(2)
	// a=2,b=1 -> index b<<2|a = 0b0110 = 6.
	if !tt[0b0110] {
		t.Error("2 > 1 should be true")
	}
	if tt[0b1001] {
		t.Error("1 > 2 should be false")
	}
	if tt[0] {
		t.Error("0 > 0 should be false")
	}
}

func TestPrecomputeSubsetAndProbability(t *testing.T) {
	// For the comparator, observing the two MSBs decides the output half
	// the time: Pr[g1+g0] = 1/2.
	w := 3
	res, err := Precompute(ComparatorTT(w), 2*w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ProbShut-0.5) > 1e-9 {
		t.Errorf("shutdown probability = %v, want 0.5", res.ProbShut)
	}
	wantSubset := map[int]bool{w - 1: true, 2*w - 1: true}
	for _, s := range res.Subset {
		if !wantSubset[s] {
			t.Errorf("subset %v should be the MSBs {%d,%d}", res.Subset, w-1, 2*w-1)
		}
	}
}

func TestPrecomputeEquivalence(t *testing.T) {
	w := 3
	n := 2 * w
	res, err := Precompute(ComparatorTT(w), n, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	stream := trace.Uniform(300, n, rng)
	prov := func(c int) []bool { return bitutil.ToBits(stream[c], n) }
	base, err := sim.Run(res.Baseline, prov, len(stream), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := sim.Run(res.Precomputed, prov, len(stream), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c := range base.Outputs {
		if base.Outputs[c][0] != pre.Outputs[c][0] {
			t.Fatalf("cycle %d: baseline %v vs precomputed %v", c, base.Outputs[c][0], pre.Outputs[c][0])
		}
	}
}

func TestPrecomputeSavesBlockPower(t *testing.T) {
	w := 4
	n := 2 * w
	res, err := Precompute(ComparatorTT(w), n, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	stream := trace.Uniform(600, n, rng)
	prov := func(c int) []bool { return bitutil.ToBits(stream[c], n) }
	base, err := sim.Run(res.Baseline, prov, len(stream), sim.Options{Model: sim.EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := sim.Run(res.Precomputed, prov, len(stream), sim.Options{Model: sim.EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	// Block A alone must switch much less in the precomputed version.
	if pre.ByGroup["block-a"] >= base.ByGroup["block-a"]*0.8 {
		t.Errorf("block-a cap: precomputed %v vs baseline %v — too little saving",
			pre.ByGroup["block-a"], base.ByGroup["block-a"])
	}
}

func TestPrecomputeValidation(t *testing.T) {
	if _, err := Precompute(ComparatorTT(2), 4, 0); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := Precompute([]bool{true}, 4, 2); err == nil {
		t.Error("wrong table size must fail")
	}
}

// holdFSM: a 6-state machine where input 0 holds the current state
// (self-loop) and input 1 advances — heavy idling for the clock gate.
func holdFSM() *fsm.FSM {
	f := &fsm.FSM{NumInputs: 1, NumOutputs: 2, NumStates: 6,
		Next: make([][]int, 6), Out: make([][]uint64, 6)}
	for s := 0; s < 6; s++ {
		f.Next[s] = []int{s, (s + 1) % 6}
		f.Out[s] = []uint64{uint64(s & 3), uint64(s & 3)}
	}
	return f
}

func TestGatedControllerEquivalence(t *testing.T) {
	f := holdFSM()
	enc := fsm.BinaryEncoding(f.NumStates)
	plain, err := fsm.Synthesize(f, enc)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := GatedController(f, enc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	symbols := make([]int, 300)
	for i := range symbols {
		if rng.Float64() < 0.7 {
			symbols[i] = 0 // hold often
		} else {
			symbols[i] = 1
		}
	}
	prov := func(c int) []bool { return []bool{symbols[c] == 1} }
	a, err := sim.Run(plain, prov, len(symbols), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(gated, prov, len(symbols), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Outputs {
		av := bitutil.FromBits(a.Outputs[c])
		bv := bitutil.FromBits(b.Outputs[c])
		if av != bv {
			t.Fatalf("cycle %d: plain %d vs gated %d", c, av, bv)
		}
	}
}

func TestGatedControllerSavesClockPower(t *testing.T) {
	f := holdFSM()
	enc := fsm.BinaryEncoding(f.NumStates)
	plain, err := fsm.Synthesize(f, enc)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := GatedController(f, enc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	symbols := make([]int, 500)
	for i := range symbols {
		if rng.Float64() < 0.8 {
			symbols[i] = 0
		} else {
			symbols[i] = 1
		}
	}
	prov := func(c int) []bool { return []bool{symbols[c] == 1} }
	a, err := sim.Run(plain, prov, len(symbols), sim.Options{TrackClock: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(gated, prov, len(symbols), sim.Options{TrackClock: true, GateClock: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.ByGroup["clock"] >= a.ByGroup["clock"]*0.5 {
		t.Errorf("gated clock cap %v should be well below plain %v (80%% hold)",
			b.ByGroup["clock"], a.ByGroup["clock"])
	}
}

// guardCircuit: y = mux(sel; h(x), g(x)) with disjoint deep cones.
func guardCircuit(width int) (*logic.Netlist, int) {
	n := logic.New()
	sel := n.AddInput("sel")
	x := n.AddInputBus("x", width)
	z := n.AddInputBus("z", width)
	// Cone h: xor chain over x.
	h := x[0]
	for i := 1; i < width; i++ {
		h = n.Add(logic.Xor, h, x[i])
	}
	// Cone g: and/or chain over z.
	g := z[0]
	for i := 1; i < width; i++ {
		if i%2 == 0 {
			g = n.Add(logic.And, g, z[i])
		} else {
			g = n.Add(logic.Or, g, z[i])
		}
	}
	y := n.Add(logic.Mux, sel, h, g)
	n.MarkOutput(y)
	return n, y
}

func TestGuardEvaluationEquivalence(t *testing.T) {
	nl, _ := guardCircuit(8)
	guarded, count := GuardEvaluation(nl)
	if count == 0 {
		t.Fatal("no cones guarded")
	}
	rng := rand.New(rand.NewSource(5))
	cycles := 400
	vectors := make([][]bool, cycles)
	for c := range vectors {
		vec := make([]bool, 1+16)
		vec[0] = rng.Float64() < 0.5
		for i := 1; i < len(vec); i++ {
			vec[i] = rng.Intn(2) == 1
		}
		vectors[c] = vec
	}
	a, err := sim.Run(nl, sim.VectorInputs(vectors), cycles, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(guarded, sim.VectorInputs(vectors), cycles, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Outputs {
		if a.Outputs[c][0] != b.Outputs[c][0] {
			t.Fatalf("cycle %d: outputs differ", c)
		}
	}
}

func TestGuardEvaluationSavesPower(t *testing.T) {
	nl, _ := guardCircuit(12)
	guarded, _ := GuardEvaluation(nl)
	rng := rand.New(rand.NewSource(6))
	cycles := 600
	vectors := make([][]bool, cycles)
	for c := range vectors {
		vec := make([]bool, 1+24)
		// sel=1 selects the cheap and/or cone 95% of the time, so the
		// high-activity xor cone is guarded off almost always.
		vec[0] = rng.Float64() < 0.95
		for i := 1; i < len(vec); i++ {
			vec[i] = rng.Intn(2) == 1
		}
		vectors[c] = vec
	}
	a, err := sim.Run(nl, sim.VectorInputs(vectors), cycles, sim.Options{Model: sim.EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(guarded, sim.VectorInputs(vectors), cycles, sim.Options{Model: sim.EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	if b.SwitchedCap >= a.SwitchedCap {
		t.Errorf("guarded cap %v should be below baseline %v", b.SwitchedCap, a.SwitchedCap)
	}
}

func TestPipelineCutEquivalence(t *testing.T) {
	// Multiplier (glitch-heavy) pipelined at mid depth: outputs must
	// equal the baseline delayed by one cycle.
	n := logic.New()
	a := n.AddInputBus("a", 4)
	b := n.AddInputBus("b", 4)
	// Simple reconvergent arithmetic: (a+b) XOR-folded.
	s := make(logic.Bus, 4)
	carry := n.Add(logic.Const0)
	for i := 0; i < 4; i++ {
		axb := n.Add(logic.Xor, a[i], b[i])
		s[i] = n.Add(logic.Xor, axb, carry)
		ab := n.Add(logic.And, a[i], b[i])
		cx := n.Add(logic.And, axb, carry)
		carry = n.Add(logic.Or, ab, cx)
	}
	n.MarkOutputBus(s)
	n.MarkOutput(carry)

	cut, err := PipelineCut(n, n.Depth()/2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	streamA := trace.Uniform(200, 4, rng)
	streamB := trace.Uniform(200, 4, rng)
	prov := func(c int) []bool {
		return append(bitutil.ToBits(streamA[c], 4), bitutil.ToBits(streamB[c], 4)...)
	}
	base, err := sim.Run(n, prov, 200, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	piped, err := sim.Run(cut, prov, 200, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < 200; c++ {
		for j := range base.Outputs[c-1] {
			if piped.Outputs[c][j] != base.Outputs[c-1][j] {
				t.Fatalf("cycle %d out %d: pipeline not a 1-cycle delay", c, j)
			}
		}
	}
}

func TestRetimeForPowerReducesGlitchPower(t *testing.T) {
	// Deep unbalanced xor/and network with heavy glitching: the best cut
	// must beat at least the worst cut, and the chosen pipeline must not
	// switch more combinational cap than the unpipelined baseline's
	// combinational logic... registers add their own cap, so compare the
	// "logic" group only.
	n := logic.New()
	in := n.AddInputBus("x", 10)
	cur := in[0]
	var mids []int
	for i := 1; i < 10; i++ {
		cur = n.Add(logic.Xor, cur, in[i])
		mids = append(mids, cur)
	}
	// Fan the glitchy chain tail into more logic.
	tail := cur
	for i := 0; i < 8; i++ {
		tail = n.Add(logic.Xor, tail, mids[i%len(mids)])
	}
	n.MarkOutput(tail)

	rng := rand.New(rand.NewSource(8))
	stream := trace.Uniform(150, 10, rng)
	prov := func(c int) []bool { return bitutil.ToBits(stream[c], 10) }

	depth, best, err := RetimeForPower(n, prov, len(stream))
	if err != nil {
		t.Fatal(err)
	}
	if depth <= 0 || best == nil {
		t.Fatal("no cut chosen")
	}
	resBest, err := sim.Run(best, prov, len(stream), sim.Options{Model: sim.EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the deepest (least useful) cut.
	worstNet, err := PipelineCut(n, n.Depth()-1)
	if err != nil {
		t.Fatal(err)
	}
	resWorst, err := sim.Run(worstNet, prov, len(stream), sim.Options{Model: sim.EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	if resBest.SwitchedCap > resWorst.SwitchedCap {
		t.Errorf("chosen cut %v switches more than the worst cut %v", resBest.SwitchedCap, resWorst.SwitchedCap)
	}
	if resBest.ByGroup["logic"] >= resWorst.ByGroup["logic"] {
		t.Errorf("chosen cut's logic cap %v should beat worst %v",
			resBest.ByGroup["logic"], resWorst.ByGroup["logic"])
	}
}

func TestPipelineCutTooShallow(t *testing.T) {
	n := logic.New()
	a := n.AddInput("a")
	n.MarkOutput(n.Add(logic.Not, a))
	if _, _, err := RetimeForPower(n, nil, 0); err == nil {
		t.Error("expected error on depth-1 netlist")
	}
}

func TestCloneNetlistIndependent(t *testing.T) {
	n := logic.New()
	a := n.AddInput("a")
	g := n.Add(logic.Not, a)
	n.MarkOutput(g)
	c := cloneNetlist(n)
	c.Gates[g].Fanin[0] = 0
	c.AddInput("b")
	if len(n.Inputs) != 1 {
		t.Error("clone mutated the original inputs")
	}
	if n.Gates[g].Fanin[0] != a {
		t.Error("clone shares fanin storage with the original")
	}
}

func TestPrecomputeComparatorEquivalence(t *testing.T) {
	w := 6
	res := PrecomputeComparator(w)
	if res.ProbShut != 0.5 {
		t.Errorf("shutdown probability = %v, want 0.5", res.ProbShut)
	}
	rng := rand.New(rand.NewSource(71))
	stream := trace.Uniform(400, 2*w, rng)
	prov := func(c int) []bool { return bitutil.ToBits(stream[c], 2*w) }
	base, err := sim.Run(res.Baseline, prov, len(stream), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := sim.Run(res.Precomputed, prov, len(stream), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c := range base.Outputs {
		if base.Outputs[c][0] != pre.Outputs[c][0] {
			t.Fatalf("cycle %d: structural precompute diverges", c)
		}
	}
	// And it must actually save on the block.
	baseED, err := sim.Run(res.Baseline, prov, len(stream), sim.Options{Model: sim.EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	preED, err := sim.Run(res.Precomputed, prov, len(stream), sim.Options{Model: sim.EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	if preED.ByGroup["block-a"] >= baseED.ByGroup["block-a"]*0.8 {
		t.Errorf("block-a saving too small: %v vs %v",
			preED.ByGroup["block-a"], baseED.ByGroup["block-a"])
	}
}
