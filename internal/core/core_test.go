package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"hlpower/internal/macromodel"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

func est(name string, l Level, p float64, err error) Estimator {
	return Func{EstimatorName: name, EstimatorLevel: l, Fn: func() (float64, error) { return p, err }}
}

func TestRankOrdersByPower(t *testing.T) {
	r := Rank([]Candidate{
		{Name: "big", Estimator: est("m", RTL, 10, nil)},
		{Name: "small", Estimator: est("m", RTL, 2, nil)},
		{Name: "mid", Estimator: est("m", RTL, 5, nil)},
	})
	if r[0].Candidate.Name != "small" || r[2].Candidate.Name != "big" {
		t.Errorf("ranking order wrong: %v, %v, %v",
			r[0].Candidate.Name, r[1].Candidate.Name, r[2].Candidate.Name)
	}
	best, err := r.Best()
	if err != nil || best.Candidate.Name != "small" {
		t.Errorf("Best = %v, %v", best.Candidate.Name, err)
	}
}

func TestRankFailuresSortLast(t *testing.T) {
	r := Rank([]Candidate{
		{Name: "broken", Estimator: est("m", Gate, 0, errors.New("boom"))},
		{Name: "fine", Estimator: est("m", Gate, 7, nil)},
	})
	if r[0].Candidate.Name != "fine" {
		t.Error("failing estimator should sort last")
	}
	if r[1].Err == nil {
		t.Error("error not preserved")
	}
}

func TestBestAllFailed(t *testing.T) {
	r := Rank([]Candidate{
		{Name: "a", Estimator: est("m", Software, 0, errors.New("x"))},
	})
	if _, err := r.Best(); err == nil {
		t.Error("expected error when everything failed")
	}
}

func TestRankingString(t *testing.T) {
	r := Rank([]Candidate{
		{Name: "opt", Estimator: est("macro", RTL, 3.5, nil)},
		{Name: "bad", Estimator: est("macro", RTL, 0, errors.New("nope"))},
	})
	s := r.String()
	if !strings.Contains(s, "opt") || !strings.Contains(s, "3.5") {
		t.Errorf("report missing content:\n%s", s)
	}
	if !strings.Contains(s, "error: nope") {
		t.Errorf("report missing error:\n%s", s)
	}
}

func TestLevelString(t *testing.T) {
	if Software.String() != "software" || Gate.String() != "gate" {
		t.Error("level names wrong")
	}
	if Level(99).String() == "" {
		t.Error("unknown level should still print")
	}
}

func TestAdaptersEstimateAndRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mod := rtlib.NewAdder(6)
	a := trace.Uniform(400, 6, rng)
	b := trace.Uniform(400, 6, rng)

	gate := &GateLevelEstimator{
		Net: mod.Net,
		Inputs: func(c int) []bool {
			return mod.InputVector(a[c], b[c])
		},
		Cycles: len(a),
	}
	mm, err := macromodel.FitBitwise(mod, a, b, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	macro := &MacroModelEstimator{Model: mm, A: a, B: b}
	ent := &EntropyEstimator{Module: mod, A: a, B: b}

	pg, err := gate.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	pm, err := macro.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	pe, err := ent.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if pg <= 0 || pm <= 0 || pe <= 0 {
		t.Fatalf("estimates must be positive: %v %v %v", pg, pm, pe)
	}
	// The macro-model was trained on this module: it should land close
	// to the gate-level figure; the entropy estimate is rougher but must
	// be the right order of magnitude.
	if r := pm / pg; r < 0.8 || r > 1.25 {
		t.Errorf("macro/gate ratio %v out of range", r)
	}
	if r := pe / pg; r < 0.2 || r > 5 {
		t.Errorf("entropy/gate ratio %v out of range", r)
	}

	ranking := Rank([]Candidate{
		{Name: "gate", Estimator: gate},
		{Name: "macro", Estimator: macro},
		{Name: "entropy", Estimator: ent},
	})
	if _, err := ranking.Best(); err != nil {
		t.Fatal(err)
	}
	if ranking[0].Estimate.Power > ranking[2].Estimate.Power {
		t.Error("ranking not sorted")
	}
}

func TestAdapterValidation(t *testing.T) {
	if _, err := (&GateLevelEstimator{}).Estimate(); err == nil {
		t.Error("empty gate estimator should fail")
	}
	if _, err := (&MacroModelEstimator{}).Estimate(); err == nil {
		t.Error("empty macro estimator should fail")
	}
	if _, err := (&EntropyEstimator{}).Estimate(); err == nil {
		t.Error("empty entropy estimator should fail")
	}
}
