package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"hlpower/internal/budget"
)

// slowCandidates builds a deterministic candidate set whose estimators
// burn budget steps, fail, panic, or degrade — the full ranking
// vocabulary.
func slowCandidates(n int) []Candidate {
	var out []Candidate
	for i := 0; i < n; i++ {
		i := i
		switch {
		case i%7 == 3:
			out = append(out, Candidate{
				Name: fmt.Sprintf("fail-%d", i),
				Estimator: Func{
					EstimatorName: "broken", EstimatorLevel: RTL,
					Fn: func() (float64, error) { return 0, errors.New("estimator failure") },
				},
			})
		case i%7 == 5:
			out = append(out, Candidate{
				Name: fmt.Sprintf("panic-%d", i),
				Estimator: Func{
					EstimatorName: "panicky", EstimatorLevel: RTL,
					Fn: func() (float64, error) { panic("estimator bug") },
				},
			})
		case i%7 == 6:
			out = append(out, Candidate{
				Name: fmt.Sprintf("degraded-%d", i),
				Estimator: FuncB{
					EstimatorName: "coarse", EstimatorLevel: Behavioral,
					Fn: func(b *budget.Budget) (float64, bool, error) {
						return float64(100 - i), true, nil
					},
				},
			})
		default:
			out = append(out, Candidate{
				Name: fmt.Sprintf("ok-%d", i),
				Estimator: FuncB{
					EstimatorName: "exact", EstimatorLevel: Gate,
					Fn: func(b *budget.Budget) (float64, bool, error) {
						for s := 0; s < 50; s++ {
							if err := b.Step(1); err != nil {
								return 0, false, err
							}
						}
						return float64(100 - i), false, nil
					},
				},
			})
		}
	}
	return out
}

// TestRankParallelMatchesSerial: with an ample budget, the concurrent
// ranking must be identical — same order, same powers, same error and
// degraded flags — to the serial one, at every worker count.
func TestRankParallelMatchesSerial(t *testing.T) {
	cands := slowCandidates(23)
	serial := RankBudget(nil, cands)
	for _, workers := range []int{1, 2, 4, 9} {
		got := RankParallel(nil, workers, cands)
		if len(got) != len(serial) {
			t.Fatalf("w=%d: length mismatch", workers)
		}
		for i := range serial {
			s, g := serial[i], got[i]
			if s.Candidate.Name != g.Candidate.Name {
				t.Fatalf("w=%d: rank %d is %q, serial has %q", workers, i, g.Candidate.Name, s.Candidate.Name)
			}
			if math.Float64bits(s.Estimate.Power) != math.Float64bits(g.Estimate.Power) {
				t.Fatalf("w=%d: %q power differs", workers, s.Candidate.Name)
			}
			if s.Estimate.Degraded != g.Estimate.Degraded {
				t.Fatalf("w=%d: %q degraded flag differs", workers, s.Candidate.Name)
			}
			if (s.Err == nil) != (g.Err == nil) {
				t.Fatalf("w=%d: %q error presence differs: %v vs %v", workers, s.Candidate.Name, s.Err, g.Err)
			}
		}
	}
}

// TestRankParallelErrorContainment: one failing or panicking candidate
// must not take down sibling evaluations in the pool.
func TestRankParallelErrorContainment(t *testing.T) {
	cands := slowCandidates(14)
	r := RankParallel(nil, 4, cands)
	best, err := r.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Err != nil {
		t.Fatalf("best pick carries an error: %+v", best)
	}
	var failures int
	for _, c := range r {
		if c.Err != nil {
			failures++
		}
	}
	if failures == 0 || failures == len(r) {
		t.Fatalf("expected a mix of failures and successes, got %d/%d", failures, len(r))
	}
}

// TestRankParallelBudgetDegradation: a tight forked budget produces
// errors or degraded figures, never a hang or panic, and the ranking
// still completes with every candidate present.
func TestRankParallelBudgetDegradation(t *testing.T) {
	cands := slowCandidates(14)
	b := budget.New(budget.WithMaxSteps(120))
	r := RankParallel(b, 4, cands)
	if len(r) != len(cands) {
		t.Fatalf("ranking dropped candidates: %d of %d", len(r), len(cands))
	}
	var exceeded int
	for _, c := range r {
		if errors.Is(c.Err, budget.ErrExceeded) {
			exceeded++
		}
	}
	if exceeded == 0 {
		t.Fatal("tight budget tripped no candidate")
	}
}

// TestRankParallelFaultInjection sweeps forced budget faults through
// the concurrent ranking: every candidate still reports (value or
// typed error), and the pool unwinds cleanly.
func TestRankParallelFaultInjection(t *testing.T) {
	cands := slowCandidates(10)
	for fail := int64(1); fail <= 4; fail++ {
		b := budget.New(
			budget.WithFaultPlan(budget.FaultPlan{FailAtCheck: fail}),
			budget.WithCheckInterval(16),
		)
		r := RankParallel(b, 3, cands)
		if len(r) != len(cands) {
			t.Fatalf("fail@%d: ranking dropped candidates", fail)
		}
		for _, c := range r {
			if c.Err != nil && !errors.Is(c.Err, budget.ErrExceeded) {
				// Estimator-declared failures are fine; anything else
				// must be a typed budget violation.
				if c.Err.Error() != "estimator failure" &&
					c.Err.Error() != "hlpower: internal panic: estimator bug" {
					t.Fatalf("fail@%d: unexpected error class: %v", fail, c.Err)
				}
			}
		}
	}
}
