// Package core ties the repository together into the paper's Fig. 1
// methodology: power estimators at several abstraction levels presented
// behind one interface, and the "design improvement loop" — rank a set
// of candidate design/synthesis/optimization options by estimated power
// and pick the most effective one, at any level, without descending to
// the gate level first.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/memo"
	"hlpower/internal/par"
)

// Level is an abstraction level of the Fig. 1 flow.
type Level int

// Abstraction levels, highest first.
const (
	Software Level = iota
	Behavioral
	RTL
	Gate
)

var levelNames = [...]string{
	Software: "software", Behavioral: "behavioral", RTL: "rtl", Gate: "gate",
}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Estimate is one power figure with its provenance. Degraded marks a
// figure produced by a fallback path after a resource budget cut off
// the exact computation — still a valid ordering signal for the
// improvement loop, but coarser than an exact estimate.
type Estimate struct {
	Power    float64
	Level    Level
	Model    string // which estimation technique produced it
	Degraded bool
}

// Estimator produces a power estimate for a fixed design under a fixed
// workload. Implementations wrap the entropy, macromodel, complexity,
// and sim packages.
type Estimator interface {
	Name() string
	Level() Level
	Estimate() (float64, error)
}

// Func adapts a closure into an Estimator.
type Func struct {
	EstimatorName  string
	EstimatorLevel Level
	Fn             func() (float64, error)
}

// Name returns the estimator's name.
func (f Func) Name() string { return f.EstimatorName }

// Level returns the estimator's abstraction level.
func (f Func) Level() Level { return f.EstimatorLevel }

// Estimate invokes the closure.
func (f Func) Estimate() (float64, error) { return f.Fn() }

// BudgetEstimator is implemented by estimators that accept a resource
// budget and can produce a degraded (cheaper, coarser) figure when it
// trips. RankBudget prefers this interface when present.
type BudgetEstimator interface {
	Estimator
	EstimateBudget(b *budget.Budget) (power float64, degraded bool, err error)
}

// FuncB adapts a budget-aware closure into a BudgetEstimator.
type FuncB struct {
	EstimatorName  string
	EstimatorLevel Level
	Fn             func(b *budget.Budget) (float64, bool, error)
}

// Name returns the estimator's name.
func (f FuncB) Name() string { return f.EstimatorName }

// Level returns the estimator's abstraction level.
func (f FuncB) Level() Level { return f.EstimatorLevel }

// Estimate invokes the closure without a budget.
func (f FuncB) Estimate() (float64, error) {
	p, _, err := f.Fn(nil)
	return p, err
}

// EstimateBudget invokes the closure under a budget.
func (f FuncB) EstimateBudget(b *budget.Budget) (float64, bool, error) {
	return f.Fn(b)
}

// Candidate is one design option in an improvement loop: a name and an
// estimator for its power under the target workload.
type Candidate struct {
	Name      string
	Estimator Estimator
	// MemoKey, when non-nil, is the content key identifying this
	// candidate's (design, workload, options) input to RankParallelMemo.
	// Estimators are closures and cannot be hashed; the caller, who knows
	// what the closure captures, derives the key with a memo.Enc.
	MemoKey *memo.Key
}

// Ranked is a candidate with its evaluated estimate.
type Ranked struct {
	Candidate Candidate
	Estimate  Estimate
	Err       error
	// Cached reports that the estimate was replayed from a memoization
	// cache (or shared with a concurrent identical evaluation) rather
	// than computed by this call.
	Cached bool
}

// Ranking is the outcome of one improvement-loop evaluation, cheapest
// first. Candidates whose estimators failed sort last and carry Err.
type Ranking []Ranked

// Best returns the lowest-power successfully estimated candidate.
func (r Ranking) Best() (Ranked, error) {
	for _, c := range r {
		if c.Err == nil {
			return c, nil
		}
	}
	return Ranked{}, errors.New("core: no candidate could be estimated")
}

// Rank evaluates every candidate and orders them by estimated power.
// This is one turn of the design-improvement loop: the caller applies
// the winning option and re-enters with the next round of candidates.
// A panicking estimator is contained: it becomes that candidate's Err
// and the loop continues.
func Rank(candidates []Candidate) Ranking {
	return RankBudget(nil, candidates)
}

// RankBudget is Rank under a per-candidate resource budget. Estimators
// implementing BudgetEstimator receive the budget and may come back
// degraded; the ranking still orders them by power, with exact figures
// winning ties over degraded ones, so the improvement loop can pick a
// winner even when some candidates only produced partial results. The
// budget is shared sequentially across candidates (sticky: once it
// trips, the remaining candidates fail fast).
func RankBudget(b *budget.Budget, candidates []Candidate) Ranking {
	return RankParallel(b, 1, candidates)
}

// RankParallel is RankBudget with candidate estimators evaluated
// concurrently by a bounded worker pool (nonpositive workers means one
// per CPU). A failing or panicking candidate never cancels its
// siblings — its error is data, recorded in the Ranked entry exactly
// as in the serial path. Each worker evaluates under a forked share of
// the budget rather than the serial sticky whole, so under a tight
// budget the set of degraded candidates may differ from a serial run;
// with an ample (or nil) budget and deterministic estimators the
// ranking is identical to RankBudget's, because results are collected
// in candidate order and sorted stably. With workers == 1 the pool
// degenerates to the serial sticky-budget loop.
func RankParallel(b *budget.Budget, workers int, candidates []Candidate) Ranking {
	out := make(Ranking, len(candidates))
	// The task never returns an error: per-candidate failures are part
	// of the ranking, not a reason to stop evaluating the others.
	par.Do(b, workers, len(candidates), func(i int, wb *budget.Budget) error {
		out[i] = evaluate(wb, candidates[i])
		return nil
	})
	sortRanking(out)
	return out
}

// CandidateEstimate is what RankParallelMemo stores per candidate: the
// scalar outcome of one estimator evaluation. It is immutable by
// construction (two plain fields, copied on read). It is exported so
// other serving layers (the cluster candidate endpoint) can store and
// read the same cache entries under the same content keys.
type CandidateEstimate struct {
	Power    float64
	Degraded bool
}

// RankParallelMemo is RankParallel with per-candidate estimate
// memoization: candidates carrying a MemoKey reuse a previously
// computed power figure — so re-ranking an overlapping candidate set
// only simulates the new designs — and concurrent rankings of the same
// candidate collapse onto one evaluation.
//
// Only exact successes are stored: degraded estimates, failures (other
// than negative-cached input errors, which the cache handles itself),
// and anything computed while a fault-injection plan is armed on the
// budget go through the normal path and are never written back. With a
// nil cache, or for candidates without a MemoKey, the behavior is
// exactly RankParallel's.
func RankParallelMemo(b *budget.Budget, workers int, cache *memo.Cache, candidates []Candidate) Ranking {
	if cache == nil || b.FaultArmed() {
		return RankParallel(b, workers, candidates)
	}
	out := make(Ranking, len(candidates))
	par.Do(b, workers, len(candidates), func(i int, wb *budget.Budget) error {
		c := candidates[i]
		if c.MemoKey == nil {
			out[i] = evaluate(wb, c)
			return nil
		}
		var (
			r        Ranked
			computed bool
		)
		v, shared, err := cache.Do(*c.MemoKey, func() (any, int64, bool, error) {
			r = evaluate(wb, c)
			computed = true
			if r.Err != nil {
				return nil, 0, false, r.Err
			}
			return CandidateEstimate{Power: r.Estimate.Power, Degraded: r.Estimate.Degraded},
				32, !r.Estimate.Degraded, nil
		})
		if computed {
			// This worker ran evaluate; r carries the full outcome.
			out[i] = r
			return nil
		}
		if !shared {
			// Defensive: compute failed before producing r.
			out[i] = rankedErr(c, err)
			return nil
		}
		if err != nil {
			out[i] = rankedErr(c, err)
			out[i].Cached = true
			return nil
		}
		ce := v.(CandidateEstimate)
		out[i] = Ranked{
			Candidate: c,
			Estimate: Estimate{
				Power: ce.Power, Level: c.Estimator.Level(),
				Model: c.Estimator.Name(), Degraded: ce.Degraded,
			},
			Cached: true,
		}
		return nil
	})
	sortRanking(out)
	return out
}

// rankedErr builds the failed-candidate entry shared by the memoized
// and direct paths.
func rankedErr(c Candidate, err error) Ranked {
	return Ranked{
		Candidate: c,
		Estimate:  Estimate{Level: c.Estimator.Level(), Model: c.Estimator.Name()},
		Err:       err,
	}
}

// evaluate runs one candidate's estimator under a budget, containing
// panics as that candidate's error.
func evaluate(b *budget.Budget, c Candidate) Ranked {
	var (
		p   float64
		deg bool
		err error
	)
	if be, ok := c.Estimator.(BudgetEstimator); ok {
		p, deg, err = safeEstimateBudget(be, b)
	} else {
		p, err = safeEstimate(c.Estimator)
	}
	return Ranked{
		Candidate: c,
		Estimate: Estimate{
			Power: p, Level: c.Estimator.Level(),
			Model: c.Estimator.Name(), Degraded: deg,
		},
		Err: err,
	}
}

// sortRanking orders candidates cheapest first, successful before
// failed, exact before degraded on power ties. The sort is stable over
// candidate order, so rankings are deterministic for a fixed input.
// Ranking implements sort.Interface directly: sort.SliceStable's
// closure forces the slice header to escape on every rank call, which
// matters on the serving hot path.
func sortRanking(out Ranking) { sort.Stable(out) }

func (r Ranking) Len() int      { return len(r) }
func (r Ranking) Swap(i, j int) { r[i], r[j] = r[j], r[i] }
func (r Ranking) Less(i, j int) bool {
	if (r[i].Err == nil) != (r[j].Err == nil) {
		return r[i].Err == nil
	}
	if r[i].Estimate.Power != r[j].Estimate.Power {
		return r[i].Estimate.Power < r[j].Estimate.Power
	}
	return !r[i].Estimate.Degraded && r[j].Estimate.Degraded
}

// safeEstimate contains estimator panics: whatever escapes the
// estimator becomes its error instead of aborting the whole loop.
func safeEstimate(e Estimator) (p float64, err error) {
	defer hlerr.RecoverAll(&err)
	return e.Estimate()
}

func safeEstimateBudget(e BudgetEstimator, b *budget.Budget) (p float64, deg bool, err error) {
	defer hlerr.RecoverAll(&err)
	return e.EstimateBudget(b)
}

// String renders the ranking as a small report table.
func (r Ranking) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-12s %-20s %12s\n", "candidate", "level", "model", "power")
	for _, c := range r {
		if c.Err != nil {
			fmt.Fprintf(&b, "%-28s %-12s %-20s %12s\n", c.Candidate.Name, "-", "-", "error: "+c.Err.Error())
			continue
		}
		model := c.Estimate.Model
		if c.Estimate.Degraded {
			model += " (degraded)"
		}
		fmt.Fprintf(&b, "%-28s %-12s %-20s %12.4f\n",
			c.Candidate.Name, c.Estimate.Level, model, c.Estimate.Power)
	}
	return b.String()
}
