package core

import (
	"errors"

	"hlpower/internal/bitutil"
	"hlpower/internal/entropy"
	"hlpower/internal/logic"
	"hlpower/internal/macromodel"
	"hlpower/internal/memo"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

// GateLevelEstimator estimates a netlist's average power by full
// simulation — the slowest, most accurate rung of the Fig. 1 ladder.
type GateLevelEstimator struct {
	Net    *logic.Netlist
	Inputs sim.InputProvider
	Cycles int
	Opts   sim.Options

	// Memo, when non-nil, memoizes the simulated power by content key:
	// repeating the same (netlist, inputs, cycles, options) estimate is
	// answered in O(hash), and concurrent identical estimates collapse
	// onto one simulation.
	Memo *memo.Cache
	// InputsDigest optionally names the input stream's content (for
	// example a hash of its generator's seed and width). When nil the
	// key falls back to hashing every materialized vector, which is
	// correct but costs O(cycles·inputs) per lookup.
	InputsDigest *memo.Key
}

// Name identifies the estimator.
func (e *GateLevelEstimator) Name() string { return "gate-simulation" }

// Level reports the abstraction level.
func (e *GateLevelEstimator) Level() Level { return Gate }

// key derives the content key of this estimate.
func (e *GateLevelEstimator) key() memo.Key {
	enc := memo.NewEnc()
	enc.String("core/gate-sim/v1")
	memo.HashNetlist(enc, e.Net)
	memo.HashSimOptions(enc, e.Opts)
	if e.InputsDigest != nil {
		enc.Bool(true)
		enc.Uint64(e.InputsDigest.Hi)
		enc.Uint64(e.InputsDigest.Lo)
		enc.Int(e.Cycles)
	} else {
		enc.Bool(false)
		memo.HashInputs(enc, e.Inputs, e.Cycles)
	}
	return enc.Key()
}

// Estimate runs the simulation and returns average power. It uses the
// bit-packed kernel when the workload allows (RunPacked degrades to the
// scalar engine for sequential netlists and event-driven runs, with
// identical results either way). With Memo set, a repeated estimate is
// replayed from the cache bit-identically instead of re-simulating.
func (e *GateLevelEstimator) Estimate() (float64, error) {
	if e.Net == nil || e.Inputs == nil || e.Cycles <= 0 {
		return 0, errors.New("core: gate estimator needs a netlist, inputs, and cycles")
	}
	if e.Memo == nil {
		return e.simulate()
	}
	v, _, err := e.Memo.Do(e.key(), func() (any, int64, bool, error) {
		p, err := e.simulate()
		return p, 8, err == nil, err
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

func (e *GateLevelEstimator) simulate() (float64, error) {
	res, err := sim.RunPacked(e.Net, e.Inputs, e.Cycles, e.Opts)
	if err != nil {
		return 0, err
	}
	return res.Power(), nil
}

// MacroModelEstimator evaluates a characterized RT-level macro-model on
// an operand stream — no gate-level simulation of the target workload.
type MacroModelEstimator struct {
	Model  macromodel.Model
	A, B   []uint64
	Module *rtlib.Module // optional, for the name only
}

// Name identifies the estimator by its macro-model.
func (e *MacroModelEstimator) Name() string { return "macro:" + e.Model.Name() }

// Level reports the abstraction level.
func (e *MacroModelEstimator) Level() Level { return RTL }

// Estimate evaluates the macro-model over the stream.
func (e *MacroModelEstimator) Estimate() (float64, error) {
	if e.Model == nil || len(e.A) < 2 {
		return 0, errors.New("core: macro estimator needs a model and a stream")
	}
	return 0.5 * e.Model.PredictStream(e.A, e.B), nil
}

// EntropyEstimator applies the information-theoretic estimate of §II-B1
// to a module: input entropy from the stream, output entropy from a
// quick functional simulation, total capacitance from the structure.
type EntropyEstimator struct {
	Module *rtlib.Module
	A, B   []uint64
	Vdd    float64
	Freq   float64
}

// Name identifies the estimator.
func (e *EntropyEstimator) Name() string { return "entropy" }

// Level reports the abstraction level.
func (e *EntropyEstimator) Level() Level { return Behavioral }

// Estimate computes the Marculescu-model power figure.
func (e *EntropyEstimator) Estimate() (float64, error) {
	if e.Module == nil || len(e.A) < 2 {
		return 0, errors.New("core: entropy estimator needs a module and a stream")
	}
	vdd, freq := e.Vdd, e.Freq
	if vdd == 0 {
		vdd = 1
	}
	if freq == 0 {
		freq = 1
	}
	res, err := e.Module.SimulateStream(e.A, e.B, sim.ZeroDelay)
	if err != nil {
		return 0, err
	}
	nIn := len(e.Module.Net.Inputs)
	nOut := len(e.Module.Net.Outputs)
	outWords := make([]uint64, len(res.Outputs))
	for i, o := range res.Outputs {
		outWords[i] = bitutil.FromBits(o)
	}
	combined := append(append([]uint64{}, e.A...), e.B...)
	hin := trace.BitEntropy(combined, len(e.Module.A)) / float64(len(e.Module.A))
	hout := trace.BitEntropy(outWords, nOut) / float64(nOut)
	havg := entropy.MarculescuHavg(nIn, nOut, hin, hout)
	return entropy.Power(e.Module.Net.TotalCapacitance(), havg, vdd, freq), nil
}
