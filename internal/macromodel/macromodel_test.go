package macromodel

import (
	"math"
	"math/rand"
	"testing"

	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/stats"
	"hlpower/internal/trace"
)

const testWidth = 8

func trainStreams(seed int64, n int) ([]uint64, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	return trace.Uniform(n, testWidth, rng), trace.Uniform(n, testWidth, rng)
}

func TestGroundTruthLength(t *testing.T) {
	mod := rtlib.NewAdder(testWidth)
	as, bs := trainStreams(1, 50)
	truth, err := GroundTruth(mod, as, bs, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != 49 {
		t.Errorf("truth length = %d, want 49", len(truth))
	}
	for _, c := range truth {
		if c < 0 {
			t.Error("negative per-cycle capacitance")
		}
	}
}

func TestPFAConstant(t *testing.T) {
	mod := rtlib.NewAdder(testWidth)
	as, bs := trainStreams(2, 400)
	m, err := FitPFA(mod, as, bs, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if m.CapPerOp <= 0 {
		t.Fatal("PFA constant must be positive")
	}
	if m.PredictCycle(0, 0, 1, 1) != m.PredictCycle(5, 5, 5, 5) {
		t.Error("PFA must be data independent")
	}
	// On random data (like training) PFA should be accurate on average.
	ta, tb := trainStreams(3, 400)
	e, err := Evaluate(m, mod, ta, tb, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if e.AvgPowerErr > 0.1 {
		t.Errorf("PFA avg error on random data = %v, want < 0.1", e.AvgPowerErr)
	}
}

func TestPFAMissesDataDependence(t *testing.T) {
	// The known PFA weakness (§II-C1): a constant operand halves the real
	// power but PFA predicts the same value.
	mod := rtlib.NewMultiplier(testWidth)
	as, bs := trainStreams(4, 300)
	m, err := FitPFA(mod, as, bs, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	ones := trace.Constant(300, testWidth, 1)
	e, err := Evaluate(m, mod, ones, as, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if e.AvgPowerErr < 0.3 {
		t.Errorf("expected PFA to fail badly on constant-operand stream, err = %v", e.AvgPowerErr)
	}
}

func TestDBTBeatsPFAOnCorrelatedData(t *testing.T) {
	mod := rtlib.NewAdder(testWidth)
	rng := rand.New(rand.NewSource(5))
	// Train both on mixed data so DBT sees sign transitions.
	trainA := trace.AR1(1500, testWidth, 0.95, 0.1, rng)
	trainB := trace.AR1(1500, testWidth, 0.95, 0.1, rng)
	pfa, err := FitPFA(mod, trainA, trainB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	dbt, err := FitDBT(mod, trainA, trainB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	// Test on fresh correlated data.
	testA := trace.AR1(800, testWidth, 0.95, 0.1, rng)
	testB := trace.AR1(800, testWidth, 0.95, 0.1, rng)
	ePFA, err := Evaluate(pfa, mod, testA, testB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	eDBT, err := Evaluate(dbt, mod, testA, testB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if eDBT.CycleErr >= ePFA.CycleErr {
		t.Errorf("DBT cycle error %v should beat PFA %v on correlated data",
			eDBT.CycleErr, ePFA.CycleErr)
	}
}

func TestBitwiseAccurateOnAdder(t *testing.T) {
	mod := rtlib.NewAdder(testWidth)
	as, bs := trainStreams(6, 2000)
	m, err := FitBitwise(mod, as, bs, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := trainStreams(7, 500)
	e, err := Evaluate(m, mod, ta, tb, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if e.AvgPowerErr > 0.05 {
		t.Errorf("bitwise avg error = %v, want < 5%%", e.AvgPowerErr)
	}
	if e.CycleErr > 0.35 {
		t.Errorf("bitwise cycle error = %v, want < 35%%", e.CycleErr)
	}
}

func TestIOModelBeatsBitwiseOnMultiplier(t *testing.T) {
	// Deep logic nesting: output activity is the missing predictor that
	// the input-only models cannot see (§II-C1).
	mod := rtlib.NewMultiplier(testWidth)
	as, bs := trainStreams(8, 1500)
	bw, err := FitBitwise(mod, as, bs, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	io, err := FitIO(mod, as, bs, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := trainStreams(9, 500)
	eBW, err := Evaluate(bw, mod, ta, tb, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	eIO, err := Evaluate(io, mod, ta, tb, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if eIO.CycleErr >= eBW.CycleErr*1.1 {
		t.Errorf("IO cycle error %v should be comparable or better than bitwise %v",
			eIO.CycleErr, eBW.CycleErr)
	}
}

func TestTable3DReasonable(t *testing.T) {
	mod := rtlib.NewAdder(testWidth)
	as, bs := trainStreams(10, 4000)
	m, err := FitTable3D(mod, as, bs, 6, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := trainStreams(11, 500)
	e, err := Evaluate(m, mod, ta, tb, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if e.AvgPowerErr > 0.1 {
		t.Errorf("3D table avg error = %v, want < 10%%", e.AvgPowerErr)
	}
}

func TestTable3DBinsValidation(t *testing.T) {
	mod := rtlib.NewAdder(4)
	as, bs := trainStreams(12, 50)
	if _, err := FitTable3D(mod, as, bs, 1, sim.ZeroDelay); err == nil {
		t.Error("expected error for 1 bin")
	}
}

func TestCycleAccurateSelectsFewVariables(t *testing.T) {
	mod := rtlib.NewAdder(testWidth)
	as, bs := trainStreams(13, 3000)
	m, err := FitCycleAccurate(mod, as, bs, 8, 4.0, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Selected) == 0 || len(m.Selected) > 8 {
		t.Fatalf("selected %d variables, want 1..8", len(m.Selected))
	}
	ta, tb := trainStreams(14, 600)
	e, err := Evaluate(m, mod, ta, tb, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~5-10% average, 10-20% cycle error with ~8 variables.
	if e.AvgPowerErr > 0.10 {
		t.Errorf("cycle-accurate avg error = %v, want <= 10%%", e.AvgPowerErr)
	}
	if e.CycleErr > 0.40 {
		t.Errorf("cycle-accurate cycle error = %v", e.CycleErr)
	}
}

func TestCensusMatchesStreamAverage(t *testing.T) {
	mod := rtlib.NewAdder(testWidth)
	as, bs := trainStreams(15, 500)
	m, err := FitBitwise(mod, as, bs, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	c := Census(m, as, bs)
	if math.Abs(c.Estimate-m.PredictStream(as, bs)) > 1e-9 {
		t.Error("census should equal the stream-average prediction")
	}
	if c.ModelEvals != len(as)-1 {
		t.Errorf("census evals = %d, want %d", c.ModelEvals, len(as)-1)
	}
}

func TestSamplerCheaperAndClose(t *testing.T) {
	mod := rtlib.NewAdder(testWidth)
	as, bs := trainStreams(16, 5000)
	m, err := FitBitwise(mod, as, bs, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	census := Census(m, as, bs)
	sampler := Sampler(m, as, bs, 30, 3, rng)
	if sampler.ModelEvals >= census.ModelEvals/10 {
		t.Errorf("sampler evals %d should be far below census %d",
			sampler.ModelEvals, census.ModelEvals)
	}
	if stats.RelError(sampler.Estimate, census.Estimate) > 0.08 {
		t.Errorf("sampler estimate %v too far from census %v",
			sampler.Estimate, census.Estimate)
	}
}

func TestAdaptiveCorrectsBias(t *testing.T) {
	// Train the macro-model on uniform data, test on a heavily correlated
	// stream: census is biased; the adaptive regression estimator with a
	// small gate-level sample removes most of the bias.
	mod := rtlib.NewAdder(testWidth)
	as, bs := trainStreams(18, 1500)
	m, err := FitPFA(mod, as, bs, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	testA := trace.AR1(2000, testWidth, 0.98, 0.05, rng)
	testB := trace.AR1(2000, testWidth, 0.98, 0.05, rng)
	truth, err := GroundTruth(mod, testA, testB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	trueMean := stats.Mean(truth)

	census := Census(m, testA, testB)
	adaptive, err := Adaptive(m, mod, testA, testB, 60, rng, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	censusErr := stats.RelError(census.Estimate, trueMean)
	adaptiveErr := stats.RelError(adaptive.Estimate, trueMean)
	if censusErr < 0.15 {
		t.Fatalf("test setup: census should be badly biased, err = %v", censusErr)
	}
	if adaptiveErr > censusErr/2 {
		t.Errorf("adaptive err %v should halve census err %v", adaptiveErr, censusErr)
	}
	if adaptive.GateLevelCycles > 100 {
		t.Errorf("adaptive used %d gate-level cycles, want small", adaptive.GateLevelCycles)
	}
}

func TestModelAccuracyLadder(t *testing.T) {
	// The §II-C1 accuracy-vs-cost ladder: on correlated test data, the
	// richer models should not be worse than PFA.
	mod := rtlib.NewAdder(testWidth)
	rng := rand.New(rand.NewSource(20))
	trainA := trace.Mixed(trace.Uniform(1000, testWidth, rng), trace.AR1(1000, testWidth, 0.9, 0.2, rng))
	trainB := trace.Mixed(trace.Uniform(1000, testWidth, rng), trace.AR1(1000, testWidth, 0.9, 0.2, rng))
	pfa, err := FitPFA(mod, trainA, trainB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := FitBitwise(mod, trainA, trainB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	testA := trace.AR1(800, testWidth, 0.9, 0.2, rng)
	testB := trace.AR1(800, testWidth, 0.9, 0.2, rng)
	ePFA, err := Evaluate(pfa, mod, testA, testB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	eBW, err := Evaluate(bw, mod, testA, testB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if eBW.CycleErr > ePFA.CycleErr {
		t.Errorf("bitwise cycle error %v should beat PFA %v", eBW.CycleErr, ePFA.CycleErr)
	}
}

func TestShortStreams(t *testing.T) {
	mod := rtlib.NewAdder(4)
	if _, err := GroundTruth(mod, []uint64{1}, []uint64{1}, sim.ZeroDelay); err == nil {
		t.Error("expected error for single-vector stream")
	}
	m := &PFAModel{CapPerOp: 5}
	if c := Census(m, []uint64{1}, []uint64{1}); c.Estimate != 0 {
		t.Error("census of single vector should be zero")
	}
}

func TestLUTModelInterpolates(t *testing.T) {
	mod := rtlib.NewAdder(testWidth)
	as, bs := trainStreams(21, 4000)
	m, err := FitLUT(mod, as, bs, 8, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := trainStreams(22, 600)
	e, err := Evaluate(m, mod, ta, tb, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if e.AvgPowerErr > 0.08 {
		t.Errorf("LUT avg error = %v, want < 8%%", e.AvgPowerErr)
	}
	// Interpolation must be continuous-ish: neighbouring activities give
	// close predictions.
	p1 := m.PredictCycle(0, 0, 0x0F, 0)
	p2 := m.PredictCycle(0, 0, 0x1F, 0)
	if p1 < 0 || p2 < 0 {
		t.Error("negative prediction")
	}
	if math.Abs(p1-p2) > m.globalMean {
		t.Errorf("adjacent activities predict wildly different caps: %v vs %v", p1, p2)
	}
}

func TestLUTValidation(t *testing.T) {
	mod := rtlib.NewAdder(4)
	as, bs := trainStreams(23, 50)
	if _, err := FitLUT(mod, as, bs, 1, sim.ZeroDelay); err == nil {
		t.Error("grid of 1 must fail")
	}
}

func TestCorrelatedModelAtLeastAsGood(t *testing.T) {
	// On the carry-chain adder, adjacent-bit toggle products capture the
	// ripple cost; the correlated candidate pool must not lose to the
	// plain one (stepwise only adds terms that pass the F test).
	mod := rtlib.NewAdder(testWidth)
	as, bs := trainStreams(24, 3000)
	plain, err := FitCycleAccurate(mod, as, bs, 10, 4.0, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := FitCycleAccurateCorrelated(mod, as, bs, 10, 4.0, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := trainStreams(25, 700)
	ep, err := Evaluate(plain, mod, ta, tb, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := Evaluate(corr, mod, ta, tb, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if ec.CycleErr > ep.CycleErr*1.05 {
		t.Errorf("correlated cycle error %v worse than plain %v", ec.CycleErr, ep.CycleErr)
	}
}

func TestCompactedStreamPreservesPowerEstimate(t *testing.T) {
	// The [36]-[38] claim: simulating the compacted surrogate instead of
	// the full stream gives nearly the same average power at a fraction
	// of the cycles.
	rng := rand.New(rand.NewSource(26))
	mod := rtlib.NewAdder(testWidth)
	fullA := trace.AR1(12000, testWidth, 0.95, 0.15, rng)
	fullB := trace.AR1(12000, testWidth, 0.95, 0.15, rng)
	shortA := trace.CompactMarkov(fullA, testWidth, 1200, rng)
	shortB := trace.CompactMarkov(fullB, testWidth, 1200, rng)
	ef, err := mod.EnergyPerPair(fullA, fullB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	es, err := mod.EnergyPerPair(shortA, shortB, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelError(es, ef); rel > 0.08 {
		t.Errorf("compacted-stream power %v vs full %v: error %v too large", es, ef, rel)
	}
}
