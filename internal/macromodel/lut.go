package macromodel

import (
	"fmt"

	"hlpower/internal/bitutil"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/stats"
)

// LUTModel is the table-lookup alternative to the macro-model equation
// that §II-C1 mentions ("a table lookup with necessary interpolation
// equations"): a 2-D grid over (input switching activity, input signal
// probability) holding mean switched capacitance, evaluated by bilinear
// interpolation — unlike Table3DModel, which is a nearest-bin lookup
// keyed additionally on output activity.
type LUTModel struct {
	ModuleName string
	WidthA     int
	WidthB     int
	GridN      int
	table      [][]float64
	count      [][]int
	globalMean float64
}

// FitLUT characterizes the grid from a training stream.
func FitLUT(mod *rtlib.Module, trainA, trainB []uint64, gridN int, delay sim.DelayModel) (*LUTModel, error) {
	if gridN < 2 {
		return nil, fmt.Errorf("macromodel: LUT grid %d too small", gridN)
	}
	truth, err := GroundTruth(mod, trainA, trainB, delay)
	if err != nil {
		return nil, err
	}
	m := &LUTModel{
		ModuleName: mod.Name,
		WidthA:     len(mod.A),
		WidthB:     len(mod.B),
		GridN:      gridN,
	}
	m.table = make([][]float64, gridN)
	m.count = make([][]int, gridN)
	for i := range m.table {
		m.table[i] = make([]float64, gridN)
		m.count[i] = make([]int, gridN)
	}
	m.globalMean = stats.Mean(truth)
	for i := range truth {
		var bp, bc uint64
		if m.WidthB > 0 {
			bp, bc = trainB[i], trainB[i+1]
		}
		act, prob := m.coords(trainA[i], bp, trainA[i+1], bc)
		gi, gj := m.cell(act), m.cell(prob)
		m.table[gi][gj] += truth[i]
		m.count[gi][gj]++
	}
	for i := range m.table {
		for j := range m.table[i] {
			if m.count[i][j] > 0 {
				m.table[i][j] /= float64(m.count[i][j])
			} else {
				m.table[i][j] = m.globalMean
			}
		}
	}
	return m, nil
}

// coords maps one cycle to normalized (activity, probability).
func (m *LUTModel) coords(aPrev, bPrev, aCur, bCur uint64) (act, prob float64) {
	w := m.WidthA + m.WidthB
	act = float64(bitutil.Hamming(aPrev, aCur)+bitutil.Hamming(bPrev, bCur)) / float64(w)
	ones := bitutil.OnesCount(aCur&bitutil.Mask(m.WidthA)) +
		bitutil.OnesCount(bCur&bitutil.Mask(m.WidthB))
	prob = float64(ones) / float64(w)
	return act, prob
}

func (m *LUTModel) cell(v float64) int {
	c := int(v * float64(m.GridN))
	if c >= m.GridN {
		c = m.GridN - 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// Name identifies the model.
func (m *LUTModel) Name() string { return "lut-interp" }

// PredictCycle evaluates the grid with bilinear interpolation between
// cell centers.
func (m *LUTModel) PredictCycle(aPrev, bPrev, aCur, bCur uint64) float64 {
	act, prob := m.coords(aPrev, bPrev, aCur, bCur)
	// Continuous grid coordinates with cell centers at (k+0.5)/N.
	fx := act*float64(m.GridN) - 0.5
	fy := prob*float64(m.GridN) - 0.5
	x0 := clampInt(int(fx), 0, m.GridN-1)
	y0 := clampInt(int(fy), 0, m.GridN-1)
	x1 := clampInt(x0+1, 0, m.GridN-1)
	y1 := clampInt(y0+1, 0, m.GridN-1)
	tx := fx - float64(x0)
	ty := fy - float64(y0)
	tx = clampF(tx, 0, 1)
	ty = clampF(ty, 0, 1)
	v00 := m.table[x0][y0]
	v10 := m.table[x1][y0]
	v01 := m.table[x0][y1]
	v11 := m.table[x1][y1]
	return v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
}

// PredictStream averages PredictCycle over the stream.
func (m *LUTModel) PredictStream(as, bs []uint64) float64 { return streamAverage(m, as, bs) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
