package macromodel

import (
	"math/rand"

	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/stats"
)

// CosimResult reports a power-cosimulation estimate (§II-C2) together
// with its cost: how many macro-model evaluations and how many gate-level
// simulation cycles were spent.
type CosimResult struct {
	Estimate        float64 // average switched capacitance per cycle
	ModelEvals      int
	GateLevelCycles int
	StdErr          float64
}

// Census evaluates the macro-model at every cycle of the stream — the
// census macro-modeling baseline.
func Census(m Model, as, bs []uint64) CosimResult {
	if len(as) < 2 {
		return CosimResult{}
	}
	var total float64
	for i := 1; i < len(as); i++ {
		var bp, bc uint64
		if len(bs) > 0 {
			bp, bc = bs[i-1], bs[i]
		}
		total += m.PredictCycle(as[i-1], bp, as[i], bc)
	}
	n := len(as) - 1
	return CosimResult{Estimate: total / float64(n), ModelEvals: n}
}

// Sampler draws nSamples simple random samples of sampleSize marked
// cycles each and averages the sample means — the sampler macro-modeling
// of Hsieh et al. [46], which collects input statistics only on marked
// cycles.
func Sampler(m Model, as, bs []uint64, sampleSize, nSamples int, rng *rand.Rand) CosimResult {
	pop := len(as) - 1
	if pop <= 0 {
		return CosimResult{}
	}
	eval := func(i int) float64 {
		var bp, bc uint64
		if len(bs) > 0 {
			bp, bc = bs[i], bs[i+1]
		}
		return m.PredictCycle(as[i], bp, as[i+1], bc)
	}
	if nSamples <= 1 {
		est := stats.SimpleRandomSample(pop, sampleSize, rng, eval)
		return CosimResult{Estimate: est.Mean, ModelEvals: est.Units, StdErr: est.StdErr}
	}
	est := stats.MultiSampleMean(pop, sampleSize, nSamples, rng, eval)
	return CosimResult{Estimate: est.Mean, ModelEvals: est.Units, StdErr: est.StdErr}
}

// Adaptive implements the adaptive (regression-estimator) macro-modeling
// of [46]: the macro-model plays the cheap predictor over the whole
// stream, a small random sample of cycles is additionally simulated at
// gate level, and the ratio estimator corrects the macro-model's bias on
// streams unlike its training set.
func Adaptive(m Model, mod *rtlib.Module, as, bs []uint64, gateSample int, rng *rand.Rand, delay sim.DelayModel) (CosimResult, error) {
	pop := len(as) - 1
	if pop <= 0 {
		return CosimResult{}, nil
	}
	cheap := func(i int) float64 {
		var bp, bc uint64
		if len(bs) > 0 {
			bp, bc = bs[i], bs[i+1]
		}
		return m.PredictCycle(as[i], bp, as[i+1], bc)
	}
	var simErr error
	costly := func(i int) float64 {
		// Gate-level simulation of the single pair (i, i+1); the module
		// is combinational, so two cycles from baseline reproduce the
		// transition exactly.
		a2 := []uint64{as[i], as[i+1]}
		var b2 []uint64
		if len(bs) > 0 {
			b2 = []uint64{bs[i], bs[i+1]}
		}
		res, err := mod.SimulateStream(a2, b2, delay)
		if err != nil {
			simErr = err
			return 0
		}
		return res.PerCycleCap[1]
	}
	est := stats.RatioEstimate(pop, gateSample, rng, cheap, costly)
	if simErr != nil {
		return CosimResult{}, simErr
	}
	return CosimResult{
		Estimate:        est.Mean,
		ModelEvals:      pop,
		GateLevelCycles: est.Units,
		StdErr:          est.StdErr,
	}, nil
}
