// Package macromodel implements the RT-level power macro-models of
// §II-C1 in increasing order of accuracy and cost: the constant power-
// factor-approximation (PFA) model, the Landman–Rabaey dual-bit-type
// model, the bitwise data model, the input–output data model, the
// Gupta–Najm three-dimensional table model, and the Wu et al. cycle-
// accurate stepwise-regression model. Every model is characterized
// against gate-level simulation of a module from rtlib and then predicts
// switched capacitance per cycle for new streams.
package macromodel

import (
	"errors"
	"fmt"

	"hlpower/internal/bitutil"
	"hlpower/internal/budget"
	"hlpower/internal/logic"
	"hlpower/internal/memo"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/stats"
)

// Model predicts the average switched capacitance per cycle of a
// characterized module for an operand stream.
type Model interface {
	Name() string
	// PredictCycle estimates the switched capacitance of one cycle given
	// the previous and current operand pairs.
	PredictCycle(aPrev, bPrev, aCur, bCur uint64) float64
	// PredictStream estimates the average switched capacitance per cycle
	// over a whole stream.
	PredictStream(as, bs []uint64) float64
}

// streamAverage implements PredictStream via PredictCycle.
func streamAverage(m Model, as, bs []uint64) float64 {
	if len(as) < 2 {
		return 0
	}
	var total float64
	for i := 1; i < len(as); i++ {
		var bp, bc uint64
		if len(bs) > 0 {
			bp, bc = bs[i-1], bs[i]
		}
		total += m.PredictCycle(as[i-1], bp, as[i], bc)
	}
	return total / float64(len(as)-1)
}

// GroundTruth measures the per-cycle switched capacitance of the module
// on the given stream by gate-level simulation. The first cycle (warm-up
// from the baseline) is excluded, matching PredictStream's pair count.
func GroundTruth(mod *rtlib.Module, as, bs []uint64, model sim.DelayModel) ([]float64, error) {
	return GroundTruthBudget(nil, mod, as, bs, model) // nil budget never trips
}

// GroundTruthBudget is GroundTruth governed by a resource budget, so
// gate-level characterization respects deadlines, cancellation, and
// injected faults like every other estimation stage.
func GroundTruthBudget(b *budget.Budget, mod *rtlib.Module, as, bs []uint64, model sim.DelayModel) ([]float64, error) {
	res, err := mod.SimulateStreamBudget(b, as, bs, model)
	if err != nil {
		return nil, err
	}
	if len(res.PerCycleCap) < 2 {
		return nil, errors.New("macromodel: stream too short")
	}
	return res.PerCycleCap[1:], nil
}

// GroundTruthMemo is GroundTruthBudget with content-addressed
// memoization: the per-cycle capacitance trace is keyed on the module's
// netlist structure, the delay model, and the exact operand streams, so
// characterizing several macro-models against the same module and
// training set performs one gate-level simulation instead of one per
// model. Each call — hit or miss — returns its own copy of the trace,
// so callers may mutate the result freely.
//
// With a nil cache, or while a fault-injection plan is armed on the
// budget, it falls through to GroundTruthBudget: chaos results are
// never stored and never served.
func GroundTruthMemo(c *memo.Cache, b *budget.Budget, mod *rtlib.Module, as, bs []uint64, model sim.DelayModel) ([]float64, error) {
	if c == nil || b.FaultArmed() {
		return GroundTruthBudget(b, mod, as, bs, model)
	}
	enc := memo.NewEnc()
	enc.String("macromodel/ground-truth/v1")
	memo.HashNetlist(enc, mod.Net)
	enc.Int(int(model))
	enc.Uint64s(as)
	enc.Uint64s(bs)
	v, _, err := c.Do(enc.Key(), func() (any, int64, bool, error) {
		truth, err := GroundTruthBudget(b, mod, as, bs, model)
		if err != nil {
			return nil, 0, false, err
		}
		return truth, int64(len(truth))*8 + 24, true, nil
	})
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), v.([]float64)...), nil
}

// MeanAbs returns the mean of xs (handy for averaging ground truth).
func MeanAbs(xs []float64) float64 { return stats.Mean(xs) }

// ---------------------------------------------------------------------
// PFA: constant model.

// PFAModel is the power-factor-approximation technique [39]: a single
// experimentally determined constant per module activation.
type PFAModel struct {
	ModuleName string
	CapPerOp   float64
}

// FitPFA characterizes the constant as the mean switched capacitance
// under pseudorandom data.
func FitPFA(mod *rtlib.Module, trainA, trainB []uint64, delay sim.DelayModel) (*PFAModel, error) {
	truth, err := GroundTruth(mod, trainA, trainB, delay)
	if err != nil {
		return nil, err
	}
	return &PFAModel{ModuleName: mod.Name, CapPerOp: stats.Mean(truth)}, nil
}

func (m *PFAModel) Name() string { return "pfa" }

func (m *PFAModel) PredictCycle(aPrev, bPrev, aCur, bCur uint64) float64 { return m.CapPerOp }

func (m *PFAModel) PredictStream(as, bs []uint64) float64 { return m.CapPerOp }

// ---------------------------------------------------------------------
// Dual bit type model.

// DBTModel is the Landman–Rabaey dual-bit-type model [40]: low-order
// bits are treated as uniform white noise with a single capacitance
// coefficient Cu, and the sign region is characterized by coefficients
// per sign-transition class (++, +-, -+, --), all per operand.
type DBTModel struct {
	ModuleName string
	Width      int
	Breakpoint int // bits >= Breakpoint form the sign region
	// Coefficients: intercept, Cu (per low-region toggle), and the four
	// sign-class coefficients per operand pair.
	Intercept float64
	Cu        float64
	CSign     [4]float64 // indexed by signClass
}

// signClass maps a (prevSign, curSign) pair to 0..3: ++, +-, -+, --.
func signClass(prevNeg, curNeg bool) int {
	idx := 0
	if prevNeg {
		idx += 2
	}
	if curNeg {
		idx++
	}
	return idx
}

func dbtFeatures(width, bp int, aPrev, bPrev, aCur, bCur uint64, hasB bool) []float64 {
	lowMask := bitutil.Mask(bp)
	f := make([]float64, 5)
	f[0] = float64(bitutil.OnesCount((aPrev ^ aCur) & lowMask))
	if hasB {
		f[0] += float64(bitutil.OnesCount((bPrev ^ bCur) & lowMask))
	}
	count := func(prev, cur uint64) {
		pn := bitutil.Bit(prev, width-1)
		cn := bitutil.Bit(cur, width-1)
		f[1+signClass(pn, cn)]++
	}
	count(aPrev, aCur)
	if hasB {
		count(bPrev, bCur)
	}
	return f
}

// FitDBT characterizes the dual-bit-type model. The breakpoint between
// the white-noise and sign regions is detected from the training stream
// as the lowest bit whose activity falls below half the LSB activity
// (for uniform data the sign region is just the top bit).
func FitDBT(mod *rtlib.Module, trainA, trainB []uint64, delay sim.DelayModel) (*DBTModel, error) {
	truth, err := GroundTruth(mod, trainA, trainB, delay)
	if err != nil {
		return nil, err
	}
	w := mod.Width()
	acts := bitutil.BitActivities(trainA, w)
	if len(trainB) > 0 {
		bacts := bitutil.BitActivities(trainB, w)
		for i := range acts {
			acts[i] = (acts[i] + bacts[i]) / 2
		}
	}
	bp := w - 1 // at least the top bit is "sign"
	for b := w - 1; b >= 1; b-- {
		if acts[b] < acts[0]/2 {
			bp = b
		} else {
			break
		}
	}
	hasB := len(trainB) > 0
	// No intercept: the four sign-class counts sum to the operand count
	// every cycle, so a constant column would be collinear with them.
	X := make([][]float64, len(truth))
	for i := range truth {
		var bp0, bc uint64
		if hasB {
			bp0, bc = trainB[i], trainB[i+1]
		}
		X[i] = dbtFeatures(w, bp, trainA[i], bp0, trainA[i+1], bc, hasB)
	}
	fit, err := stats.OLS(X, truth)
	if err != nil {
		return nil, fmt.Errorf("macromodel: DBT fit: %w", err)
	}
	m := &DBTModel{ModuleName: mod.Name, Width: w, Breakpoint: bp, Cu: fit.Beta[0]}
	copy(m.CSign[:], fit.Beta[1:5])
	return m, nil
}

func (m *DBTModel) Name() string { return "dual-bit-type" }

func (m *DBTModel) PredictCycle(aPrev, bPrev, aCur, bCur uint64) float64 {
	feat := dbtFeatures(m.Width, m.Breakpoint, aPrev, bPrev, aCur, bCur, true)
	p := m.Intercept + m.Cu*feat[0] // Intercept stays 0 from fitting
	for i := 0; i < 4; i++ {
		p += m.CSign[i] * feat[1+i]
	}
	return p
}

func (m *DBTModel) PredictStream(as, bs []uint64) float64 { return streamAverage(m, as, bs) }

// ---------------------------------------------------------------------
// Bitwise data model.

// BitwiseModel assigns a regression capacitance to every input pin:
// cap = c0 + Σ C_i·E_i where E_i is pin i's toggle this cycle.
type BitwiseModel struct {
	ModuleName string
	WidthA     int
	WidthB     int
	Intercept  float64
	Coef       []float64 // per input bit: a bits then b bits
}

func bitwiseFeatures(wa, wb int, aPrev, bPrev, aCur, bCur uint64) []float64 {
	f := make([]float64, wa+wb)
	da := aPrev ^ aCur
	for i := 0; i < wa; i++ {
		if bitutil.Bit(da, i) {
			f[i] = 1
		}
	}
	db := bPrev ^ bCur
	for i := 0; i < wb; i++ {
		if bitutil.Bit(db, i) {
			f[wa+i] = 1
		}
	}
	return f
}

// FitBitwise characterizes the per-pin capacitances by least squares.
func FitBitwise(mod *rtlib.Module, trainA, trainB []uint64, delay sim.DelayModel) (*BitwiseModel, error) {
	truth, err := GroundTruth(mod, trainA, trainB, delay)
	if err != nil {
		return nil, err
	}
	wa := len(mod.A)
	wb := len(mod.B)
	X := make([][]float64, len(truth))
	for i := range truth {
		var bp, bc uint64
		if wb > 0 {
			bp, bc = trainB[i], trainB[i+1]
		}
		X[i] = append([]float64{1}, bitwiseFeatures(wa, wb, trainA[i], bp, trainA[i+1], bc)...)
	}
	fit, err := stats.OLS(X, truth)
	if err != nil {
		return nil, fmt.Errorf("macromodel: bitwise fit: %w", err)
	}
	return &BitwiseModel{ModuleName: mod.Name, WidthA: wa, WidthB: wb,
		Intercept: fit.Beta[0], Coef: fit.Beta[1:]}, nil
}

func (m *BitwiseModel) Name() string { return "bitwise" }

func (m *BitwiseModel) PredictCycle(aPrev, bPrev, aCur, bCur uint64) float64 {
	f := bitwiseFeatures(m.WidthA, m.WidthB, aPrev, bPrev, aCur, bCur)
	p := m.Intercept
	for i, c := range m.Coef {
		p += c * f[i]
	}
	return p
}

func (m *BitwiseModel) PredictStream(as, bs []uint64) float64 { return streamAverage(m, as, bs) }

// ---------------------------------------------------------------------
// Input–output data model.

// IOModel regresses on the mean input activity and the mean (zero-delay)
// output activity: cap = c0 + CI·EI + CO·EO. Output activity comes from
// the module's functional behaviour, evaluated via a fast zero-delay
// output function captured at characterization time.
type IOModel struct {
	ModuleName string
	WidthA     int
	WidthB     int
	WidthOut   int
	Intercept  float64
	CI, CO     float64
	outFn      func(a, b uint64) uint64
}

// FitIO characterizes the input–output model. The module's functional
// output is obtained by zero-delay evaluation (the "fast functional
// simulation" of [41]).
func FitIO(mod *rtlib.Module, trainA, trainB []uint64, delay sim.DelayModel) (*IOModel, error) {
	truth, err := GroundTruth(mod, trainA, trainB, delay)
	if err != nil {
		return nil, err
	}
	outFn, wOut, err := functionalOutput(mod)
	if err != nil {
		return nil, err
	}
	wa, wb := len(mod.A), len(mod.B)
	X := make([][]float64, len(truth))
	for i := range truth {
		var bp, bc uint64
		if wb > 0 {
			bp, bc = trainB[i], trainB[i+1]
		}
		ei := float64(bitutil.Hamming(trainA[i], trainA[i+1]) + bitutil.Hamming(bp, bc))
		eo := float64(bitutil.Hamming(outFn(trainA[i], bp), outFn(trainA[i+1], bc)))
		X[i] = []float64{1, ei, eo}
	}
	fit, err := stats.OLS(X, truth)
	if err != nil {
		return nil, fmt.Errorf("macromodel: IO fit: %w", err)
	}
	return &IOModel{ModuleName: mod.Name, WidthA: wa, WidthB: wb, WidthOut: wOut,
		Intercept: fit.Beta[0], CI: fit.Beta[1], CO: fit.Beta[2], outFn: outFn}, nil
}

// functionalOutput builds a closure evaluating the module's settled
// outputs by topological zero-delay evaluation.
func functionalOutput(mod *rtlib.Module) (func(a, b uint64) uint64, int, error) {
	order, err := mod.Net.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	n := mod.Net
	wOut := len(n.Outputs)
	fn := func(a, b uint64) uint64 {
		vals := make([]bool, len(n.Gates))
		for i, s := range mod.A {
			vals[s] = bitutil.Bit(a, i)
		}
		for i, s := range mod.B {
			vals[s] = bitutil.Bit(b, i)
		}
		var buf []bool
		for _, id := range order {
			g := n.Gates[id]
			if g.Kind == logic.Input || g.Kind == logic.Latch || g.Kind.IsSequential() {
				continue
			}
			buf = buf[:0]
			for _, f := range g.Fanin {
				buf = append(buf, vals[f])
			}
			vals[id] = logic.EvalGate(g.Kind, buf)
		}
		var w uint64
		for i, o := range n.Outputs {
			if vals[o] {
				w |= 1 << uint(i)
			}
		}
		return w
	}
	return fn, wOut, nil
}

func (m *IOModel) Name() string { return "input-output" }

func (m *IOModel) PredictCycle(aPrev, bPrev, aCur, bCur uint64) float64 {
	ei := float64(bitutil.Hamming(aPrev, aCur) + bitutil.Hamming(bPrev, bCur))
	eo := float64(bitutil.Hamming(m.outFn(aPrev, bPrev), m.outFn(aCur, bCur)))
	return m.Intercept + m.CI*ei + m.CO*eo
}

func (m *IOModel) PredictStream(as, bs []uint64) float64 { return streamAverage(m, as, bs) }
