package macromodel

import (
	"fmt"

	"hlpower/internal/bitutil"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/stats"
)

// CycleAccurateModel is the Wu et al. statistically designed macro-model
// [44]: a small set of power-critical variables chosen by forward
// stepwise regression with a partial-F test, from a candidate pool of
// per-bit toggles, per-bit values, and aggregate input/output activities.
// The equation form is unique per module, matching the paper's "variables
// used for each module are unique to that module type".
type CycleAccurateModel struct {
	ModuleName   string
	Selected     []int // indices into the candidate feature vector
	Beta         []float64
	WidthA       int
	WidthB       int
	Correlations bool // Qiu [45] spatial-correlation candidate terms
	outFn        func(a, b uint64) uint64
}

// candidateFeatures builds the full candidate vector for one cycle:
// [per-bit toggles (wa+wb), per-bit current values (wa+wb), total input
// Hamming, total output Hamming]. When correlations is set, the pool is
// extended with the Qiu et al. [45] spatial-correlation terms: products
// of adjacent toggle pairs (order two) and triples (order three).
func candidateFeatures(wa, wb int, correlations bool, outFn func(a, b uint64) uint64, aPrev, bPrev, aCur, bCur uint64) []float64 {
	n := 2*(wa+wb) + 2
	f := make([]float64, 0, n)
	toggles := bitwiseFeatures(wa, wb, aPrev, bPrev, aCur, bCur)
	f = append(f, toggles...)
	for i := 0; i < wa; i++ {
		if bitutil.Bit(aCur, i) {
			f = append(f, 1)
		} else {
			f = append(f, 0)
		}
	}
	for i := 0; i < wb; i++ {
		if bitutil.Bit(bCur, i) {
			f = append(f, 1)
		} else {
			f = append(f, 0)
		}
	}
	f = append(f, float64(bitutil.Hamming(aPrev, aCur)+bitutil.Hamming(bPrev, bCur)))
	f = append(f, float64(bitutil.Hamming(outFn(aPrev, bPrev), outFn(aCur, bCur))))
	if correlations {
		for i := 0; i+1 < len(toggles); i++ {
			f = append(f, toggles[i]*toggles[i+1])
		}
		for i := 0; i+2 < len(toggles); i++ {
			f = append(f, toggles[i]*toggles[i+1]*toggles[i+2])
		}
	}
	return f
}

// FitCycleAccurate characterizes the stepwise model. maxVars bounds the
// selected variable count (the paper reports ~8 suffices for 5–10%
// average error); fEnter is the partial-F entry threshold (typically 4).
func FitCycleAccurate(mod *rtlib.Module, trainA, trainB []uint64, maxVars int, fEnter float64, delay sim.DelayModel) (*CycleAccurateModel, error) {
	return fitCycleAccurate(mod, trainA, trainB, maxVars, fEnter, delay, false)
}

// FitCycleAccurateCorrelated extends the candidate pool with the Qiu et
// al. spatial-correlation terms before stepwise selection.
func FitCycleAccurateCorrelated(mod *rtlib.Module, trainA, trainB []uint64, maxVars int, fEnter float64, delay sim.DelayModel) (*CycleAccurateModel, error) {
	return fitCycleAccurate(mod, trainA, trainB, maxVars, fEnter, delay, true)
}

func fitCycleAccurate(mod *rtlib.Module, trainA, trainB []uint64, maxVars int, fEnter float64, delay sim.DelayModel, correlations bool) (*CycleAccurateModel, error) {
	truth, err := GroundTruth(mod, trainA, trainB, delay)
	if err != nil {
		return nil, err
	}
	outFn, _, err := functionalOutput(mod)
	if err != nil {
		return nil, err
	}
	wa, wb := len(mod.A), len(mod.B)
	probe := candidateFeatures(wa, wb, correlations, outFn, 0, 0, 0, 0)
	nFeat := len(probe)
	cols := make([][]float64, nFeat)
	for c := range cols {
		cols[c] = make([]float64, len(truth))
	}
	for i := range truth {
		var bp, bc uint64
		if wb > 0 {
			bp, bc = trainB[i], trainB[i+1]
		}
		feat := candidateFeatures(wa, wb, correlations, outFn, trainA[i], bp, trainA[i+1], bc)
		for c := range feat {
			cols[c][i] = feat[c]
		}
	}
	res, err := stats.Stepwise(cols, truth, fEnter, maxVars)
	if err != nil {
		return nil, fmt.Errorf("macromodel: stepwise fit: %w", err)
	}
	return &CycleAccurateModel{
		ModuleName:   mod.Name,
		Selected:     res.Selected,
		Beta:         res.Fit.Beta,
		WidthA:       wa,
		WidthB:       wb,
		Correlations: correlations,
		outFn:        outFn,
	}, nil
}

func (m *CycleAccurateModel) Name() string { return "cycle-accurate" }

func (m *CycleAccurateModel) PredictCycle(aPrev, bPrev, aCur, bCur uint64) float64 {
	feat := candidateFeatures(m.WidthA, m.WidthB, m.Correlations, m.outFn, aPrev, bPrev, aCur, bCur)
	p := m.Beta[0]
	for j, c := range m.Selected {
		p += m.Beta[1+j] * feat[c]
	}
	return p
}

func (m *CycleAccurateModel) PredictStream(as, bs []uint64) float64 {
	return streamAverage(m, as, bs)
}

// Errors quantifies a model against gate-level ground truth on a test
// stream: the relative error of the average power and the mean relative
// per-cycle error (the paper's "average power" and "cycle power" error
// metrics).
type Errors struct {
	AvgPowerErr float64
	CycleErr    float64
}

// Evaluate measures both error metrics for a model on a test stream.
func Evaluate(m Model, mod *rtlib.Module, testA, testB []uint64, delay sim.DelayModel) (Errors, error) {
	truth, err := GroundTruth(mod, testA, testB, delay)
	if err != nil {
		return Errors{}, err
	}
	avgTruth := stats.Mean(truth)
	avgPred := m.PredictStream(testA, testB)
	var cycleErr float64
	n := 0
	for i := range truth {
		var bp, bc uint64
		if len(testB) > 0 {
			bp, bc = testB[i], testB[i+1]
		}
		pred := m.PredictCycle(testA[i], bp, testA[i+1], bc)
		if avgTruth > 0 {
			cycleErr += abs(pred-truth[i]) / avgTruth
			n++
		}
	}
	if n > 0 {
		cycleErr /= float64(n)
	}
	return Errors{
		AvgPowerErr: stats.RelError(avgPred, avgTruth),
		CycleErr:    cycleErr,
	}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
