package macromodel

import (
	"fmt"

	"hlpower/internal/bitutil"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/stats"
)

// Table3DModel is the Gupta–Najm three-dimensional table model [41]:
// switched capacitance indexed by quantized (average input signal
// probability, average input activity, average output activity). Empty
// bins fall back to the nearest populated bin along the activity axes,
// then to the global mean.
type Table3DModel struct {
	ModuleName string
	Bins       int
	WidthA     int
	WidthB     int
	table      []float64
	count      []int
	globalMean float64
	outFn      func(a, b uint64) uint64
}

func (m *Table3DModel) idx(p, di, do int) int { return (p*m.Bins+di)*m.Bins + do }

func (m *Table3DModel) quantize(v float64) int {
	b := int(v * float64(m.Bins))
	if b >= m.Bins {
		b = m.Bins - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// cycleStats returns the (signal probability, input activity, output
// activity) coordinates of one cycle, each normalized to [0,1].
func (m *Table3DModel) cycleStats(aPrev, bPrev, aCur, bCur uint64) (p, di, do float64) {
	wIn := m.WidthA + m.WidthB
	ones := bitutil.OnesCount(aCur&bitutil.Mask(m.WidthA)) +
		bitutil.OnesCount(bCur&bitutil.Mask(m.WidthB))
	p = float64(ones) / float64(wIn)
	di = float64(bitutil.Hamming(aPrev, aCur)+bitutil.Hamming(bPrev, bCur)) / float64(wIn)
	oPrev := m.outFn(aPrev, bPrev)
	oCur := m.outFn(aCur, bCur)
	wOut := 64
	do = float64(bitutil.Hamming(oPrev, oCur)) / float64(wOut)
	return p, di, do
}

// FitTable3D characterizes the table from a training stream. bins of 8
// with a few thousand training cycles populates the reachable region.
func FitTable3D(mod *rtlib.Module, trainA, trainB []uint64, bins int, delay sim.DelayModel) (*Table3DModel, error) {
	if bins < 2 {
		return nil, fmt.Errorf("macromodel: need >=2 bins, got %d", bins)
	}
	truth, err := GroundTruth(mod, trainA, trainB, delay)
	if err != nil {
		return nil, err
	}
	outFn, _, err := functionalOutput(mod)
	if err != nil {
		return nil, err
	}
	m := &Table3DModel{
		ModuleName: mod.Name,
		Bins:       bins,
		WidthA:     len(mod.A),
		WidthB:     len(mod.B),
		table:      make([]float64, bins*bins*bins),
		count:      make([]int, bins*bins*bins),
		outFn:      outFn,
	}
	m.globalMean = stats.Mean(truth)
	for i := range truth {
		var bp, bc uint64
		if m.WidthB > 0 {
			bp, bc = trainB[i], trainB[i+1]
		}
		p, di, do := m.cycleStats(trainA[i], bp, trainA[i+1], bc)
		k := m.idx(m.quantize(p), m.quantize(di), m.quantize(do))
		m.table[k] += truth[i]
		m.count[k]++
	}
	for k := range m.table {
		if m.count[k] > 0 {
			m.table[k] /= float64(m.count[k])
		}
	}
	return m, nil
}

func (m *Table3DModel) Name() string { return "3d-table" }

// PredictCycle looks up the quantized bin, widening the search ring by
// ring until a populated bin is found.
func (m *Table3DModel) PredictCycle(aPrev, bPrev, aCur, bCur uint64) float64 {
	p, di, do := m.cycleStats(aPrev, bPrev, aCur, bCur)
	bp, bi, bo := m.quantize(p), m.quantize(di), m.quantize(do)
	if k := m.idx(bp, bi, bo); m.count[k] > 0 {
		return m.table[k]
	}
	for radius := 1; radius < m.Bins; radius++ {
		var sum float64
		n := 0
		for dp := -radius; dp <= radius; dp++ {
			for dd := -radius; dd <= radius; dd++ {
				for dq := -radius; dq <= radius; dq++ {
					x, y, z := bp+dp, bi+dd, bo+dq
					if x < 0 || y < 0 || z < 0 || x >= m.Bins || y >= m.Bins || z >= m.Bins {
						continue
					}
					if k := m.idx(x, y, z); m.count[k] > 0 {
						sum += m.table[k]
						n++
					}
				}
			}
		}
		if n > 0 {
			return sum / float64(n)
		}
	}
	return m.globalMean
}

func (m *Table3DModel) PredictStream(as, bs []uint64) float64 { return streamAverage(m, as, bs) }
