package cluster

import (
	"fmt"
	"testing"

	"hlpower/internal/memo"
)

func testKey(i int) memo.Key {
	e := memo.NewEnc()
	e.String("ring-test")
	e.Int(i)
	return e.Key()
}

// Ownership must be a pure function of the member set: any node
// building the ring from any ordering of the same members routes
// identically, or forwarding would ping-pong.
func TestRingOwnerDeterministicAcrossOrderings(t *testing.T) {
	a := NewRing([]string{"n0", "n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n0", "n2", "n1"}, 0) // shuffled + dup
	for i := 0; i < 500; i++ {
		k := testKey(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owner %q vs %q across orderings", i, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingBalance(t *testing.T) {
	ids := []string{"n0", "n1", "n2", "n3"}
	r := NewRing(ids, 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(testKey(i))]++
	}
	for _, id := range ids {
		share := float64(counts[id]) / keys
		// With 64 vnodes per member a 4-node ring balances well; the wide
		// tolerance just guards against a catastrophic hashing bug (one
		// node owning everything or nothing).
		if share < 0.10 || share > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys, want roughly 25%%", id, 100*share)
		}
	}
}

// Removing one member must only move the keys it owned: consistent
// hashing's defining property, and what keeps a node death from
// invalidating the whole cluster's cache placement.
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	full := NewRing([]string{"n0", "n1", "n2", "n3"}, 0)
	without := NewRing([]string{"n0", "n1", "n3"}, 0)
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		k := testKey(i)
		was, now := full.Owner(k), without.Owner(k)
		if was == "n2" {
			if now == "n2" {
				t.Fatalf("key %d still owned by removed member", i)
			}
			continue // these must move
		}
		if was != now {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed member changed owner; want 0", moved)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Owner(testKey(1)); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	solo := NewRing([]string{"only"}, 0)
	for i := 0; i < 50; i++ {
		if got := solo.Owner(testKey(i)); got != "only" {
			t.Fatalf("single-member ring owner = %q", got)
		}
	}
}

// The wraparound branch (key position above the highest virtual node)
// must route to the ring's first point, not fall off the end.
func TestRingWraparound(t *testing.T) {
	r := NewRing([]string{"n0", "n1"}, 4)
	top := r.points[len(r.points)-1].hash
	if top == ^uint64(0) {
		t.Skip("highest vnode at max hash; wraparound untestable with this member set")
	}
	k := memo.Key{Hi: top + 1, Lo: 0}
	if got, want := r.Owner(k), r.points[0].id; got != want {
		t.Errorf("wraparound owner = %q, want first point's member %q", got, want)
	}
}

func TestRingMembers(t *testing.T) {
	r := NewRing([]string{"b", "a", "b", ""}, 0)
	got := fmt.Sprintf("%v", r.Members())
	if got != "[a b]" {
		t.Errorf("Members() = %s, want [a b]", got)
	}
}
