package cluster

import (
	"sync"
	"time"

	"hlpower/internal/resilience"
)

// DefaultSuspectAfter is how long a peer's heartbeat sequence may fail
// to advance (by the local clock) before the peer is suspected dead.
const DefaultSuspectAfter = 2 * time.Second

// peerHealth is everything locally known about one peer's liveness.
type peerHealth struct {
	seq         uint64    // highest heartbeat sequence observed
	lastAdvance time.Time // local receipt time of the last new evidence
	lastSentAt  time.Time // peer-reported send time — observability only
}

// Health is the node-local liveness view. Every judgement is made from
// evidence timestamped by the local clock at the moment it arrived: a
// peer is alive while its heartbeat sequence keeps advancing (or direct
// transport successes keep landing) within SuspectAfter. The SentAt
// timestamps peers put in their gossip are recorded so skew is visible
// in stats, but they never feed the liveness decision — a peer whose
// clock runs hours fast or slow is judged exactly like one whose clock
// is correct.
type Health struct {
	suspectAfter time.Duration
	clock        resilience.Clock

	mu    sync.Mutex
	seq   uint64 // this node's own heartbeat sequence
	peers map[string]*peerHealth
}

// NewHealth builds a liveness view over the given peer IDs. Peers start
// with a full grace window: a node that just joined does not declare
// the world dead before the first gossip round lands.
func NewHealth(peerIDs []string, suspectAfter time.Duration, clock resilience.Clock) *Health {
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	if clock == nil {
		clock = resilience.Wall{}
	}
	h := &Health{
		suspectAfter: suspectAfter,
		clock:        clock,
		peers:        make(map[string]*peerHealth, len(peerIDs)),
	}
	now := clock.Now()
	for _, id := range peerIDs {
		h.peers[id] = &peerHealth{lastAdvance: now}
	}
	return h
}

// Bump advances this node's own heartbeat sequence and returns it; the
// gossip loop calls it once per round.
func (h *Health) Bump() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	return h.seq
}

// View returns the sequence numbers this node would gossip: its own
// plus the highest it has observed for every peer, so liveness evidence
// propagates transitively through nodes that can still talk to both
// sides of a partial partition.
func (h *Health) View(selfID string) map[string]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	view := make(map[string]uint64, len(h.peers)+1)
	view[selfID] = h.seq
	for id, p := range h.peers {
		view[id] = p.seq
	}
	return view
}

// Merge folds a received gossip view in. Only a sequence strictly
// greater than what is already known counts as fresh evidence, and the
// receipt time is read from the local clock — sentAt is retained purely
// so Snapshot can report observed skew.
func (h *Health) Merge(view map[string]uint64, sentAt time.Time) {
	now := h.clock.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, seq := range view {
		p, ok := h.peers[id]
		if !ok {
			continue // not a configured peer (could be self, or unknown)
		}
		if seq > p.seq {
			p.seq = seq
			p.lastAdvance = now
		}
		if !sentAt.IsZero() {
			p.lastSentAt = sentAt
		}
	}
}

// Observe records direct first-hand evidence that a peer is alive — a
// transport-level success on the data path — which keeps a peer usable
// even if gossip traffic specifically is being dropped.
func (h *Health) Observe(id string) {
	now := h.clock.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.peers[id]; ok {
		p.lastAdvance = now
	}
}

// Alive reports whether the peer has shown evidence of life within the
// suspect window. Unknown IDs are dead.
func (h *Health) Alive(id string) bool {
	now := h.clock.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[id]
	return ok && now.Sub(p.lastAdvance) <= h.suspectAfter
}

// PeerHealth is one peer's liveness as reported by Snapshot.
type PeerHealth struct {
	ID    string `json:"id"`
	Alive bool   `json:"alive"`
	Seq   uint64 `json:"seq"`
	// SkewNano is (peer-reported send time − local receipt time) of the
	// last gossip received, in nanoseconds. Diagnostic only: large skew
	// here proves the liveness logic is working despite bad peer clocks,
	// not that the peer is unhealthy.
	SkewNano int64 `json:"skew_nano,omitempty"`
}

// Snapshot reports every peer's liveness, keyed by peer ID.
func (h *Health) Snapshot() map[string]PeerHealth {
	now := h.clock.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]PeerHealth, len(h.peers))
	for id, p := range h.peers {
		ph := PeerHealth{
			ID:    id,
			Alive: now.Sub(p.lastAdvance) <= h.suspectAfter,
			Seq:   p.seq,
		}
		if !p.lastSentAt.IsZero() {
			ph.SkewNano = p.lastSentAt.Sub(p.lastAdvance).Nanoseconds()
		}
		out[id] = ph
	}
	return out
}
