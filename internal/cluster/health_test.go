package cluster

import (
	"testing"
	"time"

	"hlpower/internal/resilience"
)

func newTestHealth(ids ...string) (*Health, *resilience.Fake) {
	clk := resilience.NewFake(time.Unix(1000, 0))
	return NewHealth(ids, time.Second, clk), clk
}

func TestHealthGracePeriodThenSuspect(t *testing.T) {
	h, clk := newTestHealth("p1")
	if !h.Alive("p1") {
		t.Fatal("peer should start inside the grace window")
	}
	clk.Advance(1100 * time.Millisecond)
	if h.Alive("p1") {
		t.Fatal("peer with no evidence past SuspectAfter should be suspected")
	}
}

func TestHealthSeqAdvanceKeepsAlive(t *testing.T) {
	h, clk := newTestHealth("p1")
	for i := 1; i <= 5; i++ {
		clk.Advance(900 * time.Millisecond)
		h.Merge(map[string]uint64{"p1": uint64(i)}, time.Time{})
		if !h.Alive("p1") {
			t.Fatalf("round %d: advancing seq should keep peer alive", i)
		}
	}
	// A stale or merely repeated sequence is not evidence.
	clk.Advance(900 * time.Millisecond)
	h.Merge(map[string]uint64{"p1": 5}, time.Time{})
	clk.Advance(200 * time.Millisecond)
	if h.Alive("p1") {
		t.Fatal("non-advancing seq must not refresh liveness")
	}
}

// The invariant the chaos soak leans on: liveness ignores the sender's
// own clock entirely. A peer whose SentAt is hours in the past or
// future is judged purely by whether its sequence advances.
func TestHealthSkewImmune(t *testing.T) {
	h, clk := newTestHealth("past", "future")
	clk.Advance(900 * time.Millisecond)
	farPast := clk.Now().Add(-6 * time.Hour)
	farFuture := clk.Now().Add(+6 * time.Hour)
	h.Merge(map[string]uint64{"past": 1}, farPast)
	h.Merge(map[string]uint64{"future": 1}, farFuture)
	if !h.Alive("past") || !h.Alive("future") {
		t.Fatal("skewed SentAt must not affect liveness of an advancing peer")
	}
	// And the skew is visible in the snapshot, which is its only use.
	snap := h.Snapshot()
	if snap["past"].SkewNano >= 0 {
		t.Errorf("past skew = %d, want negative", snap["past"].SkewNano)
	}
	if snap["future"].SkewNano <= 0 {
		t.Errorf("future skew = %d, want positive", snap["future"].SkewNano)
	}
	// Silence without seq advance still kills a skewed peer on schedule.
	clk.Advance(2 * time.Second)
	h.Merge(map[string]uint64{"future": 1}, clk.Now().Add(6*time.Hour))
	if h.Alive("future") {
		t.Fatal("repeating seq with a fresh future SentAt must not resurrect a peer")
	}
}

func TestHealthObserveIsEvidence(t *testing.T) {
	h, clk := newTestHealth("p1")
	clk.Advance(1500 * time.Millisecond)
	if h.Alive("p1") {
		t.Fatal("setup: peer should be suspected")
	}
	h.Observe("p1")
	if !h.Alive("p1") {
		t.Fatal("direct transport success should revive the peer")
	}
}

func TestHealthViewCarriesSelfAndPeers(t *testing.T) {
	h, _ := newTestHealth("p1", "p2")
	h.Bump()
	h.Bump()
	h.Merge(map[string]uint64{"p1": 7}, time.Time{})
	v := h.View("self")
	if v["self"] != 2 || v["p1"] != 7 || v["p2"] != 0 {
		t.Errorf("view = %v, want self:2 p1:7 p2:0", v)
	}
}

func TestHealthUnknownPeer(t *testing.T) {
	h, _ := newTestHealth("p1")
	h.Merge(map[string]uint64{"stranger": 99}, time.Time{})
	if h.Alive("stranger") {
		t.Fatal("unknown IDs must never be alive")
	}
	if _, ok := h.Snapshot()["stranger"]; ok {
		t.Fatal("merge must not create entries for unconfigured peers")
	}
}
