package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hlpower/internal/resilience"
)

func fastRetry() resilience.RetryPolicy {
	return resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
}

func TestNodeValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing self ID should be rejected")
	}
	if _, err := New(Config{Self: Peer{ID: "a", URL: "http://a"}, Peers: []Peer{{ID: "b"}}}); err == nil {
		t.Error("peer without URL should be rejected")
	}
	if _, err := New(Config{Self: Peer{ID: "a"}, Peers: []Peer{
		{ID: "b", URL: "http://b"}, {ID: "b", URL: "http://b2"},
	}}); err == nil {
		t.Error("duplicate peer ID should be rejected")
	}
	// Self listed among peers is the common static-config shape.
	n, err := New(Config{Self: Peer{ID: "a"}, Peers: []Peer{{ID: "a", URL: "http://a"}, {ID: "b", URL: "http://b"}}})
	if err != nil {
		t.Fatalf("self among peers: %v", err)
	}
	if got := len(n.Members()); got != 2 {
		t.Errorf("members = %d, want 2", got)
	}
}

// A dead owner resolves to local compute, and its recovery (observed
// via gossip) restores forwarding — the shed/recover cycle.
func TestNodeOwnerShedsDeadPeer(t *testing.T) {
	clk := resilience.NewFake(time.Unix(0, 0))
	n, err := New(Config{
		Self:         Peer{ID: "self"},
		Peers:        []Peer{{ID: "other", URL: "http://other"}},
		SuspectAfter: time.Second,
		Clock:        clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key the remote peer owns.
	var k = testKey(0)
	for i := 0; n.ring.Owner(k) != "other"; i++ {
		k = testKey(i)
	}
	if _, remote := n.Owner(k); !remote {
		t.Fatal("live remote owner should be forwarded to")
	}
	clk.Advance(2 * time.Second)
	if p, remote := n.Owner(k); remote || p.ID != "self" {
		t.Fatalf("dead owner should shed to self, got (%q, %v)", p.ID, remote)
	}
	n.health.Merge(map[string]uint64{"other": 1}, time.Time{})
	if _, remote := n.Owner(k); !remote {
		t.Fatal("recovered owner should be forwarded to again")
	}
	// Keys self owns are never remote.
	for i := 0; n.ring.Owner(k) != "self"; i++ {
		k = testKey(i)
	}
	if _, remote := n.Owner(k); remote {
		t.Fatal("self-owned key must not resolve remote")
	}
}

func TestNodeForwardRelaysAnyStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Test") != "yes" {
			t.Error("forward dropped the caller's header")
		}
		b, _ := json.Marshal(map[string]string{"echo": r.URL.Path})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTeapot)
		w.Write(b)
	}))
	defer srv.Close()
	n, err := New(Config{
		Self:  Peer{ID: "self"},
		Peers: []Peer{{ID: "p", URL: srv.URL}},
		Retry: fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	status, body, hdr, err := n.Forward(context.Background(), Peer{ID: "p", URL: srv.URL},
		"/v1/x", []byte(`{}`), map[string]string{"X-Test": "yes"})
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	if status != http.StatusTeapot {
		t.Errorf("status = %d: any HTTP status is a transport success", status)
	}
	if !bytes.Contains(body, []byte("/v1/x")) {
		t.Errorf("body = %s", body)
	}
	if hdr.Get("Content-Type") != "application/json" {
		t.Error("response headers should be relayed")
	}
	if st := n.Stats(); st.Peers[0].Breaker.Failures != 0 {
		t.Error("an HTTP response must not count as a breaker failure")
	}
}

func TestNodeForwardRetriesTransportErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Hijack and slam the connection: a genuine transport error.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	n, err := New(Config{
		Self:  Peer{ID: "self"},
		Peers: []Peer{{ID: "p", URL: srv.URL}},
		Retry: fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	status, _, _, err := n.Forward(context.Background(), Peer{ID: "p", URL: srv.URL}, "/v1/x", []byte(`{}`), nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("retry should have recovered: status=%d err=%v", status, err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("calls = %d, want 2 (one failure, one retry)", got)
	}
}

func TestNodeForwardBreakerOpensAndFailsFast(t *testing.T) {
	n, err := New(Config{
		Self:             Peer{ID: "self"},
		Peers:            []Peer{{ID: "p", URL: "http://127.0.0.1:1"}}, // nothing listens
		Retry:            fastRetry(),
		FailureThreshold: 2,
		OpenTimeout:      time.Hour,
		ForwardTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	peer := Peer{ID: "p", URL: "http://127.0.0.1:1"}
	if _, _, _, err := n.Forward(context.Background(), peer, "/v1/x", nil, nil); err == nil {
		t.Fatal("forward to a dead address should fail")
	}
	// Two attempts per Forward, threshold 2: the breaker is now open and
	// the next call must fail fast without touching the network.
	_, _, _, err = n.Forward(context.Background(), peer, "/v1/x", nil, nil)
	if !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("err = %v, want breaker-open fast fail", err)
	}
	st := n.Stats()
	if st.Peers[0].Breaker.State != "open" {
		t.Errorf("breaker state = %s, want open", st.Peers[0].Breaker.State)
	}
	if st.ForwardErr == 0 {
		t.Error("transport errors should be counted")
	}
	if _, _, _, err := n.Forward(context.Background(), Peer{ID: "ghost"}, "/x", nil, nil); err == nil {
		t.Error("unknown peer should error")
	}
}

// One synchronous gossip round end to end: node A pushes its view to
// node B's handler; B learns A's sequence and marks A alive.
func TestNodeGossipRoundTrip(t *testing.T) {
	b, err := New(Config{Self: Peer{ID: "b"}, Peers: []Peer{{ID: "a", URL: "http://unused"}}, SuspectAfter: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()
	a, err := New(Config{Self: Peer{ID: "a"}, Peers: []Peer{{ID: "b", URL: srv.URL}}, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	a.GossipNow()
	a.GossipNow()
	if got := a.Stats().GossipSent; got != 2 {
		t.Errorf("sender gossip_sent = %d, want 2", got)
	}
	bs := b.Stats()
	if bs.GossipRecv != 2 {
		t.Errorf("receiver gossip_recv = %d, want 2", bs.GossipRecv)
	}
	if bs.Peers[0].Health.Seq != 2 {
		t.Errorf("b's view of a's seq = %d, want 2", bs.Peers[0].Health.Seq)
	}
	if !b.health.Alive("a") {
		t.Error("gossiping peer should be alive in receiver's view")
	}
	// Handler input validation.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on gossip endpoint = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL, "application/json", bytes.NewReader([]byte("not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad payload = %d, want 400", resp.StatusCode)
	}
}

func TestNodeStartStopNoLeak(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	n, err := New(Config{
		Self:           Peer{ID: "self"},
		Peers:          []Peer{{ID: "p", URL: srv.URL}},
		GossipInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	time.Sleep(30 * time.Millisecond)
	n.Stop()
	n.Stop() // idempotent
	if n.Stats().GossipSent == 0 {
		t.Error("gossip loop never fired")
	}
}
