// Package cluster scales powerd past one process: a consistent-hash
// ring assigns every content-addressed estimate key (internal/memo) an
// owning node, requests are forwarded to their owner — whose estimate
// cache and singleflight then collapse identical work ring-wide — and
// a gossip-based health view plus per-peer circuit breakers shed a
// dead, slow, or partitioned owner cleanly to local compute. The
// failover direction is deliberately local: estimation is a pure
// function of the request, so any node can always compute any answer;
// the ring only decides where caching and collapsing concentrate.
//
// Liveness is judged exclusively from locally observed progress
// (heartbeat sequence numbers advancing, direct transport successes),
// never from timestamps other nodes report — so clock skew between
// nodes cannot fail a healthy peer or resurrect a dead one.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"

	"hlpower/internal/memo"
)

// DefaultVNodes is the virtual-node count per member: enough points
// that a 3–5 node ring balances within a few percent, cheap enough
// that rebuilding a ring is trivial.
const DefaultVNodes = 64

// ringPoint is one virtual node's position.
type ringPoint struct {
	hash uint64
	id   string
}

// Ring is an immutable consistent-hash ring over member IDs. All nodes
// constructing a Ring from the same member set (in any order) compute
// identical ownership — the property cluster routing depends on.
type Ring struct {
	points []ringPoint
	ids    []string // distinct members, sorted
}

// NewRing builds a ring with vnodes virtual points per member
// (nonpositive means DefaultVNodes). Duplicate IDs collapse; an empty
// member list yields a ring that owns nothing.
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(ids))
	var distinct []string
	for _, id := range ids {
		if id != "" && !seen[id] {
			seen[id] = true
			distinct = append(distinct, id)
		}
	}
	sort.Strings(distinct)
	r := &Ring{ids: distinct}
	r.points = make([]ringPoint, 0, len(distinct)*vnodes)
	for _, id := range distinct {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(id, v), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// pointHash positions one virtual node: SHA-256 keeps placement
// uniform and identical on every node regardless of architecture.
func pointHash(id string, vnode int) uint64 {
	sum := sha256.Sum256([]byte("hlpower/ring/" + id + "/" + strconv.Itoa(vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the distinct member IDs, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// position maps a content key onto the ring. Keys are SHA-256 derived
// (memo.Enc.Key), so Hi alone is uniform; the ring deliberately uses
// different key bits than the memo cache's shard selector (Lo) so
// ring placement and shard placement stay independent.
func position(k memo.Key) uint64 { return k.Hi }

// Owner returns the member owning key k: the first virtual node at or
// clockwise of the key's position. An empty ring owns nothing and
// returns "".
func (r *Ring) Owner(k memo.Key) string {
	if len(r.points) == 0 {
		return ""
	}
	pos := position(k)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= pos })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].id
}
