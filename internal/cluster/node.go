package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hlpower/internal/memo"
	"hlpower/internal/resilience"
)

// Peer identifies one cluster member: a stable ID (its ring identity)
// and the base URL its HTTP API listens on.
type Peer struct {
	ID  string
	URL string
}

// Transport-level limits. Forwarded requests are small JSON bodies;
// anything larger than the serving layer's own request cap is a bug.
const maxPeerBody = 1 << 20

// Config parameterizes one cluster node.
type Config struct {
	Self  Peer   // this node; its ID joins the ring
	Peers []Peer // the other members (self tolerated and ignored)

	VNodes         int           // virtual nodes per member (0 = DefaultVNodes)
	GossipInterval time.Duration // heartbeat period (0 = 500ms)
	SuspectAfter   time.Duration // liveness window (0 = DefaultSuspectAfter)
	ForwardTimeout time.Duration // per-attempt forward deadline (0 = 2s)

	// Per-peer breaker tuning; zero values take resilience defaults.
	FailureThreshold int
	OpenTimeout      time.Duration
	HalfOpenProbes   int

	// Retry governs forward attempts; transport errors only — any HTTP
	// response, whatever its status, is a transport success.
	Retry resilience.RetryPolicy

	Clock resilience.Clock // nil = wall clock
	// Transport, when set, replaces the default RoundTripper for both
	// forwards and gossip — the chaos harness injects partitions and
	// latency here.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 2 * time.Second
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry = resilience.RetryPolicy{
			MaxAttempts: 2, BaseDelay: 5 * time.Millisecond,
			MaxDelay: 25 * time.Millisecond, Multiplier: 2,
		}
	}
	if c.Clock == nil {
		c.Clock = resilience.Wall{}
	}
	return c
}

// Node is one powerd process's membership in the ring: it knows who
// owns each key, forwards work to live owners through per-peer circuit
// breakers, and runs the gossip loop that keeps the liveness view
// current. It never computes anything itself — the serving layer asks
// it where a key lives and falls back to local compute whenever the
// answer is "nowhere reachable".
type Node struct {
	cfg    Config
	ring   *Ring
	health *Health
	peers  map[string]Peer // excluding self
	brks   map[string]*resilience.Breaker
	client *http.Client

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once

	gossipSent atomic.Int64 // gossip POSTs that reached a peer
	gossipFail atomic.Int64 // gossip POSTs that did not
	gossipRecv atomic.Int64 // gossip messages accepted by Handler
	forwards   atomic.Int64 // peer calls that returned an HTTP response
	forwardErr atomic.Int64 // peer calls that failed at the transport
}

// New validates the membership and builds the node. The ring spans
// self plus every distinct peer; a configuration listing self among
// the peers is tolerated (it is how static configs are usually
// written — every node gets the same list).
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self.ID == "" {
		return nil, errors.New("cluster: self ID is required")
	}
	peers := make(map[string]Peer, len(cfg.Peers))
	ids := []string{cfg.Self.ID}
	for _, p := range cfg.Peers {
		if p.ID == "" || p.ID == cfg.Self.ID {
			continue
		}
		if p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", p.ID)
		}
		if _, dup := peers[p.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer ID %q", p.ID)
		}
		peers[p.ID] = p
		ids = append(ids, p.ID)
	}
	n := &Node{
		cfg:    cfg,
		ring:   NewRing(ids, cfg.VNodes),
		peers:  peers,
		brks:   make(map[string]*resilience.Breaker, len(peers)),
		stop:   make(chan struct{}),
		client: &http.Client{Transport: cfg.Transport},
	}
	n.health = NewHealth(ids[1:], cfg.SuspectAfter, cfg.Clock)
	for id := range peers {
		n.brks[id] = resilience.NewBreaker(resilience.BreakerConfig{
			Name:             "peer/" + id,
			FailureThreshold: cfg.FailureThreshold,
			OpenTimeout:      cfg.OpenTimeout,
			HalfOpenProbes:   cfg.HalfOpenProbes,
			Clock:            cfg.Clock,
		})
	}
	return n, nil
}

// SelfID returns this node's ring identity.
func (n *Node) SelfID() string { return n.cfg.Self.ID }

// Members returns every ring member ID, sorted.
func (n *Node) Members() []string { return n.ring.Members() }

// Owner resolves the key's owner. remote is true only when the owner
// is a different node that is currently believed alive — the one case
// where forwarding is worth attempting. Dead or suspected owners
// resolve remote=false, which the serving layer reads as "compute
// locally": shedding, not failing.
func (n *Node) Owner(k memo.Key) (Peer, bool) {
	id := n.ring.Owner(k)
	if id == "" || id == n.cfg.Self.ID {
		return n.cfg.Self, false
	}
	if !n.health.Alive(id) {
		return n.cfg.Self, false
	}
	return n.peers[id], true
}

// Forward POSTs a JSON body to path on the peer through its circuit
// breaker and the retry policy. Transport errors (dial, reset,
// deadline) are retried and trip the breaker; an HTTP response of any
// status is a transport success returned to the caller, who decides
// what the status means. The response body is fully read so the
// connection is reusable.
func (n *Node) Forward(ctx context.Context, peer Peer, path string, body []byte, hdr map[string]string) (int, []byte, http.Header, error) {
	return n.ForwardMethod(ctx, peer, http.MethodPost, path, body, hdr)
}

// ForwardMethod is Forward for an arbitrary HTTP method — GET and
// DELETE callers (job status and cancellation routing) pass a nil
// body. Same breaker, retry, and liveness bookkeeping as Forward.
func (n *Node) ForwardMethod(ctx context.Context, peer Peer, method, path string, body []byte, hdr map[string]string) (int, []byte, http.Header, error) {
	br := n.brks[peer.ID]
	if br == nil {
		return 0, nil, nil, fmt.Errorf("cluster: unknown peer %q", peer.ID)
	}
	var (
		status   int
		respBody []byte
		respHdr  http.Header
	)
	err := n.cfg.Retry.Do(ctx, n.cfg.Clock, func(int) error {
		if err := br.Allow(); err != nil {
			return resilience.Permanent(err) // open breaker: fail fast, no retry
		}
		s, b, h, err := n.do(ctx, peer, method, path, body, hdr)
		br.Record(err)
		if err != nil {
			n.forwardErr.Add(1)
			return err
		}
		n.forwards.Add(1)
		n.health.Observe(peer.ID) // first-hand liveness evidence
		status, respBody, respHdr = s, b, h
		return nil
	})
	if err != nil {
		return 0, nil, nil, err
	}
	return status, respBody, respHdr, nil
}

// do performs one forward attempt under the per-attempt deadline.
func (n *Node) do(ctx context.Context, peer Peer, method, path string, body []byte, hdr map[string]string) (int, []byte, http.Header, error) {
	actx, cancel := context.WithTimeout(ctx, n.cfg.ForwardTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, peer.URL+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, b, resp.Header, nil
}

// GossipMessage is one heartbeat exchange. View carries the highest
// sequence the sender has observed for every member (its own
// included). SentAt is the sender's clock at send time; receivers
// record it for skew diagnostics and must never use it for liveness.
type GossipMessage struct {
	From   string            `json:"from"`
	View   map[string]uint64 `json:"view"`
	SentAt int64             `json:"sent_at_unix_nano"`
}

// Start launches the gossip loop. Safe to skip entirely (a node that
// never starts gossiping judges peers by the initial grace window and
// data-path evidence only).
func (n *Node) Start() {
	n.wg.Add(1)
	go n.gossipLoop()
}

// Stop terminates the gossip loop and waits for it. Idempotent.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
	n.client.CloseIdleConnections()
}

func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.GossipNow()
		}
	}
}

// GossipNow runs one synchronous gossip round: bump the local
// heartbeat and push the merged view to every peer, dead or alive —
// a suspected peer that is actually fine becomes live again the
// moment its next heartbeat lands, and pushing to it helps it
// recover its own view faster. Exported so tests drive rounds
// deterministically without the ticker.
func (n *Node) GossipNow() {
	n.health.Bump()
	msg := GossipMessage{
		From:   n.cfg.Self.ID,
		View:   n.health.View(n.cfg.Self.ID),
		SentAt: n.cfg.Clock.Now().UnixNano(),
	}
	body, err := json.Marshal(msg)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.GossipInterval)
	defer cancel()
	var wg sync.WaitGroup
	for _, p := range n.peers {
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			// Gossip deliberately bypasses the data-path breakers: probe
			// slots there are scarce and heartbeats must keep flowing to
			// detect recovery.
			s, _, _, err := n.do(ctx, p, http.MethodPost, "/cluster/v1/gossip", body, nil)
			if err != nil || s != http.StatusNoContent {
				n.gossipFail.Add(1)
				return
			}
			n.gossipSent.Add(1)
			n.health.Observe(p.ID)
		}(p)
	}
	wg.Wait()
}

// Handler serves the gossip endpoint (POST /cluster/v1/gossip). The
// serving layer mounts it on the same mux as the public API.
func (n *Node) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var msg GossipMessage
		dec := json.NewDecoder(io.LimitReader(r.Body, maxPeerBody))
		if err := dec.Decode(&msg); err != nil {
			http.Error(w, "bad gossip payload", http.StatusBadRequest)
			return
		}
		n.gossipRecv.Add(1)
		// The sender reporting at all is first-hand evidence of life; its
		// claimed SentAt is recorded for skew stats but never judged.
		n.health.Merge(msg.View, time.Unix(0, msg.SentAt))
		n.health.Observe(msg.From)
		w.WriteHeader(http.StatusNoContent)
	})
}

// PeerStats is one peer's row in Stats.
type PeerStats struct {
	ID      string                  `json:"id"`
	URL     string                  `json:"url"`
	Health  PeerHealth              `json:"health"`
	Breaker resilience.BreakerStats `json:"breaker"`
}

// Stats is the cluster-membership snapshot surfaced through the
// serving layer's /v1/stats.
type Stats struct {
	Self       string      `json:"self"`
	Members    []string    `json:"members"`
	GossipSent int64       `json:"gossip_sent"`
	GossipFail int64       `json:"gossip_fail"`
	GossipRecv int64       `json:"gossip_recv"`
	Forwards   int64       `json:"forwards"`
	ForwardErr int64       `json:"forward_errors"`
	Peers      []PeerStats `json:"peers"`
}

// Stats snapshots membership, liveness, gossip counters, and per-peer
// breaker positions.
func (n *Node) Stats() Stats {
	hs := n.health.Snapshot()
	s := Stats{
		Self:       n.cfg.Self.ID,
		Members:    n.ring.Members(),
		GossipSent: n.gossipSent.Load(),
		GossipFail: n.gossipFail.Load(),
		GossipRecv: n.gossipRecv.Load(),
		Forwards:   n.forwards.Load(),
		ForwardErr: n.forwardErr.Load(),
	}
	for id, p := range n.peers {
		s.Peers = append(s.Peers, PeerStats{
			ID: id, URL: p.URL, Health: hs[id], Breaker: n.brks[id].Stats(),
		})
	}
	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].ID < s.Peers[j].ID })
	return s
}
