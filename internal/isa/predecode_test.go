package isa

import (
	"math/rand"
	"testing"
)

// TestPredecodeMatchesInstrMethods checks the predecoded tables against
// the Instr methods they replace in the hot loop, over every opcode and
// random operand fields.
func TestPredecodeMatchesInstrMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var prog Program
	for op := Op(0); op < Op(NumOps); op++ {
		for i := 0; i < 16; i++ {
			prog = append(prog, Instr{
				Op:  op,
				Rd:  rng.Intn(NumRegs),
				Rs1: rng.Intn(NumRegs),
				Rs2: rng.Intn(NumRegs),
				Imm: int64(rng.Intn(512) - 256),
			})
		}
	}
	dec := predecode(prog)
	for i, ins := range prog {
		pd := dec[i]
		if pd.word != ins.Encode() {
			t.Fatalf("instr %d (%v): predecoded word %x != Encode() %x", i, ins, pd.word, ins.Encode())
		}
		if int(pd.writes) != ins.Writes() {
			t.Fatalf("instr %d (%v): predecoded writes %d != Writes() %d", i, ins, pd.writes, ins.Writes())
		}
		want := ins.Reads()
		if int(pd.nReads) != len(want) {
			t.Fatalf("instr %d (%v): predecoded %d reads, Reads() has %d", i, ins, pd.nReads, len(want))
		}
		for j, r := range want {
			if int(pd.reads[j]) != r {
				t.Fatalf("instr %d (%v): read[%d] = %d, want %d", i, ins, j, pd.reads[j], r)
			}
		}
	}
}

// BenchmarkISAStep measures the architectural simulator's per-step cost
// on a representative loop-heavy workload.
func BenchmarkISAStep(b *testing.B) {
	prog, err := DotProduct(64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	warm := NewMachine(cfg)
	st, _, err := warm.Run(prog, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(cfg)
		if _, _, err := m.Run(prog, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(st.Instructions), "ns/step")
}
