package isa

// Whole-program instruction-bus optimization: split a program into basic
// blocks at branch boundaries (and targets), then apply cold scheduling
// and operand swapping per block. Branch instructions and block borders
// are never moved, so all displacements stay valid.

// basicBlocks returns [start, end) index ranges of branch-free,
// fallthrough-only regions that are safe to reorder internally.
func basicBlocks(p Program) [][2]int {
	leader := make([]bool, len(p)+1)
	leader[0] = true
	for pc, ins := range p {
		if ins.Op.IsBranch() {
			leader[pc] = true // branches stay fixed: make them 1-blocks
			leader[pc+1] = true
			tgt := pc + 1 + int(ins.Imm)
			if tgt >= 0 && tgt <= len(p) {
				leader[tgt] = true
			}
		}
		if ins.Op == HALT {
			leader[pc] = true
			leader[pc+1] = true
		}
	}
	var blocks [][2]int
	start := 0
	for pc := 1; pc <= len(p); pc++ {
		if leader[pc] {
			if pc > start {
				blocks = append(blocks, [2]int{start, pc})
			}
			start = pc
		}
	}
	return blocks
}

// OptimizeBusTraffic applies cold scheduling and operand swapping to
// every reorderable basic block of the program, returning the rewritten
// program. Semantics are preserved: reordering honours data dependencies
// and never crosses a branch, branch target, or HALT.
func OptimizeBusTraffic(p Program) Program {
	out := make(Program, len(p))
	copy(out, p)
	for _, blk := range basicBlocks(out) {
		lo, hi := blk[0], blk[1]
		if hi-lo < 2 {
			continue
		}
		// Skip blocks containing branches or halts (they are 1-blocks by
		// construction, but be defensive).
		safe := true
		for _, ins := range out[lo:hi] {
			if ins.Op.IsBranch() || ins.Op == HALT {
				safe = false
				break
			}
		}
		if !safe {
			continue
		}
		prev := Instr{Op: NOP}
		if lo > 0 {
			prev = out[lo-1]
		}
		sched := ColdSchedule(out[lo:hi], prev, nil)
		copy(out[lo:hi], sched)
	}
	return OperandSwap(out)
}
