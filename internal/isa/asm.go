package isa

import "fmt"

// Assembler builds programs with symbolic branch labels, resolving the
// relative displacements at Assemble time.
type Assembler struct {
	prog   Program
	labels map[string]int
	fixups map[int]string // instruction index -> target label
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int), fixups: make(map[int]string)}
}

// Label binds a name to the next emitted instruction.
func (a *Assembler) Label(name string) { a.labels[name] = len(a.prog) }

// Emit appends an instruction verbatim.
func (a *Assembler) Emit(i Instr) { a.prog = append(a.prog, i) }

// Ldi emits Rd = imm.
func (a *Assembler) Ldi(rd int, imm int64) { a.Emit(Instr{Op: LDI, Rd: rd, Imm: imm}) }

// Addi emits Rd = Rs1 + imm.
func (a *Assembler) Addi(rd, rs1 int, imm int64) {
	a.Emit(Instr{Op: ADDI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Alu emits a three-register ALU operation.
func (a *Assembler) Alu(op Op, rd, rs1, rs2 int) {
	a.Emit(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Ld emits Rd = mem[Rs1+imm].
func (a *Assembler) Ld(rd, rs1 int, imm int64) {
	a.Emit(Instr{Op: LD, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits mem[Rs1+imm] = Rs2.
func (a *Assembler) St(rs1 int, imm int64, rs2 int) {
	a.Emit(Instr{Op: ST, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Branch emits a branch to a label (resolved later).
func (a *Assembler) Branch(op Op, rs1, rs2 int, label string) {
	a.fixups[len(a.prog)] = label
	a.Emit(Instr{Op: op, Rs1: rs1, Rs2: rs2})
}

// Jmp emits an unconditional jump to a label.
func (a *Assembler) Jmp(label string) {
	a.fixups[len(a.prog)] = label
	a.Emit(Instr{Op: JMP})
}

// Halt terminates the program.
func (a *Assembler) Halt() { a.Emit(Instr{Op: HALT}) }

// Assemble resolves labels and validates the program.
func (a *Assembler) Assemble() (Program, error) {
	for idx, label := range a.fixups {
		tgt, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", label)
		}
		a.prog[idx].Imm = int64(tgt - (idx + 1))
	}
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	return a.prog, nil
}
