package isa

import (
	"math/rand"
	"testing"

	"hlpower/internal/bitutil"
	"hlpower/internal/stats"
)

// mustAssemble returns a closure that unwraps (Program, error) results.
func mustAssemble(t *testing.T) func(Program, error) Program {
	return func(p Program, err error) Program {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

func TestEncodeDistinct(t *testing.T) {
	a := Instr{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}
	b := Instr{Op: ADD, Rd: 1, Rs1: 2, Rs2: 4}
	if a.Encode() == b.Encode() {
		t.Error("distinct instructions encode identically")
	}
	// Immediate occupies the low 14 bits.
	c := Instr{Op: ADDI, Rd: 1, Rs1: 2, Imm: -1}
	if c.Encode()&0x3FFF != 0x3FFF {
		t.Errorf("negative imm not two's complement: %#x", c.Encode())
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	bad := Program{{Op: ADD, Rd: 99}}
	if err := bad.Validate(); err == nil {
		t.Error("register out of range not caught")
	}
	bad = Program{{Op: JMP, Imm: 100}}
	if err := bad.Validate(); err == nil {
		t.Error("branch target out of range not caught")
	}
}

func TestVectorSumComputesSum(t *testing.T) {
	n := 50
	prog := mustAssemble(t)(VectorSum(n))
	m := NewMachine(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	data := RandomData(n, rng)
	InitMem(m, 100, data)
	var want int64
	for _, v := range data {
		want += v
	}
	st, _, err := m.Run(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != want {
		t.Errorf("sum = %d, want %d", m.Regs[3], want)
	}
	if st.MemReads != int64(n) {
		t.Errorf("reads = %d, want %d", st.MemReads, n)
	}
}

func TestDotProduct(t *testing.T) {
	n := 30
	prog := mustAssemble(t)(DotProduct(n))
	m := NewMachine(DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	x := RandomData(n, rng)
	y := RandomData(n, rng)
	InitMem(m, 100, x)
	InitMem(m, 100+n, y)
	var want int64
	for i := range x {
		want += x[i] * y[i]
	}
	if _, _, err := m.Run(prog, false); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != want {
		t.Errorf("dot = %d, want %d", m.Regs[3], want)
	}
}

func TestFIRFilterOutput(t *testing.T) {
	taps, n := 4, 20
	prog := mustAssemble(t)(FIRFilter(taps, n))
	m := NewMachine(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	coef := RandomData(taps, rng)
	x := RandomData(n+taps, rng)
	InitMem(m, 50, coef)
	InitMem(m, 100, x)
	if _, _, err := m.Run(prog, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var want int64
		for tp := 0; tp < taps; tp++ {
			want += coef[tp] * x[i+tp]
		}
		got := m.Mem[100+n+taps+i]
		if got != want {
			t.Fatalf("y[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestStridedWalkMissRates(t *testing.T) {
	cfg := DefaultConfig()
	// Stride 1: ~1/LineSize miss rate. Stride >= LineSize with footprint
	// exceeding the cache: ~100%.
	p1 := mustAssemble(t)(StridedWalk(2000, 1))
	m1 := NewMachine(cfg)
	st1, _, err := m1.Run(p1, false)
	if err != nil {
		t.Fatal(err)
	}
	low := st1.MissRateD()
	if low < 0.15 || low > 0.35 {
		t.Errorf("stride-1 miss rate = %v, want ~0.25", low)
	}
	p2 := mustAssemble(t)(StridedWalk(2000, 8))
	m2 := NewMachine(cfg)
	cfg2 := cfg
	_ = cfg2
	st2, _, err := m2.Run(p2, false)
	if err != nil {
		t.Fatal(err)
	}
	if st2.MissRateD() < 0.9 {
		t.Errorf("stride-8 miss rate = %v, want ~1", st2.MissRateD())
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	prog := mustAssemble(t)(VectorSum(500))
	m := NewMachine(DefaultConfig())
	st, _, err := m.Run(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchMissRate() > 0.05 {
		t.Errorf("loop branch miss rate = %v, want tiny", st.BranchMissRate())
	}
}

func TestTraceMatchesStats(t *testing.T) {
	prog := mustAssemble(t)(MixedALU(50))
	m := NewMachine(DefaultConfig())
	st, trace, err := m.Run(prog, true)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(trace)) != st.Instructions {
		t.Errorf("trace length %d != instructions %d", len(trace), st.Instructions)
	}
	var counts [NumOps]int64
	for _, e := range trace {
		counts[e.Instr.Op]++
	}
	if counts != st.OpCounts {
		t.Error("trace op counts disagree with stats")
	}
}

func TestInstructionLimit(t *testing.T) {
	a := NewAssembler()
	a.Label("spin")
	a.Jmp("spin")
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxInstructions = 1000
	m := NewMachine(cfg)
	if _, _, err := m.Run(prog, false); err == nil {
		t.Error("expected instruction-limit error on infinite loop")
	}
}

func TestAddressFault(t *testing.T) {
	prog := Program{{Op: LD, Rd: 1, Rs1: 0, Imm: -5}, {Op: HALT}}
	m := NewMachine(DefaultConfig())
	if _, _, err := m.Run(prog, false); err == nil {
		t.Error("expected address fault")
	}
}

func TestAssemblerUndefinedLabel(t *testing.T) {
	a := NewAssembler()
	a.Jmp("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Error("expected undefined-label error")
	}
}

func TestMeasureEnergyComponents(t *testing.T) {
	p := DefaultEnergyParams()
	tr := []TraceEntry{
		{Instr: Instr{Op: ADD}, EncWord: 0, Result: 0},
		{Instr: Instr{Op: MUL}, EncWord: 0xF, Result: 3, DCacheMiss: true},
	}
	got := MeasureEnergy(tr, p)
	want := p.Base[ADD] + p.Base[MUL] + p.StateFactor*4 + p.DataFactor*2 + p.DMissEnergy
	if got != want {
		t.Errorf("energy = %v, want %v", got, want)
	}
	if MeasureEnergy(nil, p) != 0 {
		t.Error("empty trace should be zero energy")
	}
}

func TestTiwariModelAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	ep := DefaultEnergyParams()
	model, err := CharacterizeTiwari(cfg, ep)
	if err != nil {
		t.Fatal(err)
	}
	// Base costs must roughly order like the ground truth.
	if model.Base[MUL] <= model.Base[ADD] {
		t.Errorf("characterized MUL base %v should exceed ADD %v", model.Base[MUL], model.Base[ADD])
	}
	// Predict energy of real programs and compare against the reference
	// measurement: the paper reports small errors for this decomposition.
	progs := map[string]Program{
		"vecsum": mustAssemble(t)(VectorSum(300)),
		"dot":    mustAssemble(t)(DotProduct(200)),
		"mixed":  mustAssemble(t)(MixedALU(150)),
		"fir":    mustAssemble(t)(FIRFilter(5, 40)),
	}
	rng := rand.New(rand.NewSource(4))
	for name, prog := range progs {
		m := NewMachine(cfg)
		InitMem(m, 50, RandomData(50, rng))
		InitMem(m, 100, RandomData(400, rng))
		st, trace, err := m.Run(prog, true)
		if err != nil {
			t.Fatal(err)
		}
		truth := MeasureEnergy(trace, ep)
		pred := model.Predict(st)
		rel := abs(pred-truth) / truth
		if rel > 0.10 {
			t.Errorf("%s: Tiwari prediction error %.3f, want < 10%%", name, rel)
		}
	}
}

func TestColdSchedulingReducesBusTransitions(t *testing.T) {
	// A block of independent instructions with interleaved "hot" operand
	// patterns: cold scheduling should group similar encodings.
	rng := rand.New(rand.NewSource(5))
	var improved, trials int
	for trial := 0; trial < 20; trial++ {
		var block []Instr
		ops := []Op{ADD, SUB, MUL, AND, OR, XOR}
		for i := 0; i < 12; i++ {
			block = append(block, Instr{
				Op:  ops[rng.Intn(len(ops))],
				Rd:  4 + rng.Intn(8), // distinct-ish destinations
				Rs1: rng.Intn(4),
				Rs2: rng.Intn(4),
			})
		}
		prev := Instr{Op: NOP}
		before := BusTransitions(block, prev)
		sched := ColdSchedule(block, prev, nil)
		after := BusTransitions(sched, prev)
		if after > before {
			t.Fatalf("trial %d: cold scheduling increased transitions %d -> %d", trial, before, after)
		}
		if after < before {
			improved++
		}
		trials++
		if !resultsEqual(block, sched, make([]int64, 256)) {
			t.Fatalf("trial %d: scheduling changed semantics", trial)
		}
	}
	if improved < trials/2 {
		t.Errorf("cold scheduling improved only %d/%d blocks", improved, trials)
	}
}

func TestColdScheduleRespectsDependencies(t *testing.T) {
	block := []Instr{
		{Op: LDI, Rd: 1, Imm: 5},
		{Op: ADDI, Rd: 2, Rs1: 1, Imm: 1}, // RAW on r1
		{Op: MUL, Rd: 3, Rs1: 2, Rs2: 1},  // RAW on r2
	}
	sched := ColdSchedule(block, Instr{Op: NOP}, nil)
	if !resultsEqual(block, sched, make([]int64, 64)) {
		t.Error("dependent chain must keep semantics")
	}
}

func TestExtractProfile(t *testing.T) {
	prog := mustAssemble(t)(VectorSum(100))
	m := NewMachine(DefaultConfig())
	st, _, err := m.Run(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	pf := ExtractProfile(st)
	var sum float64
	for _, f := range pf.Mix {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("mix sums to %v, want 1", sum)
	}
	if pf.Mix[LD] <= 0 {
		t.Error("vector sum must have loads in its mix")
	}
}

func TestProfileSynthesisShortAndAccurate(t *testing.T) {
	// The §II-A claim: a synthesized program orders of magnitude shorter
	// matches the original's per-instruction power closely.
	cfg := DefaultConfig()
	ep := DefaultEnergyParams()
	ref := mustAssemble(t)(FIRFilter(8, 512))
	rng := rand.New(rand.NewSource(6))
	setup := func(m *Machine) {
		InitMem(m, 50, RandomData(8, rng))
		InitMem(m, 100, RandomData(600, rng))
	}
	rep, err := RunProfileSynthesis(ref, setup, cfg, ep, 60, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LengthRatio < 20 {
		t.Errorf("length ratio = %v, want large reduction", rep.LengthRatio)
	}
	if rep.EPIError > 0.15 {
		t.Errorf("energy-per-instruction error = %v, want < 15%%", rep.EPIError)
	}
}

func TestMemOptPairSemanticsAndSavings(t *testing.T) {
	n := 64
	before, after, err := MemOptPair(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	data := RandomData(n, rng)

	run := func(p Program) (*Stats, []TraceEntry, *Machine) {
		m := NewMachine(DefaultConfig())
		InitMem(m, 100, data)
		st, tr, err := m.Run(p, true)
		if err != nil {
			t.Fatal(err)
		}
		return st, tr, m
	}
	stB, trB, mB := run(before)
	stA, trA, mA := run(after)
	// Same results in c[].
	for i := 0; i < n; i++ {
		if mB.Mem[100+2*n+i] != mA.Mem[100+2*n+i] {
			t.Fatalf("c[%d] differs: %d vs %d", i, mB.Mem[100+2*n+i], mA.Mem[100+2*n+i])
		}
		want := (data[i] + 7) * 3
		if mA.Mem[100+2*n+i] != want {
			t.Fatalf("c[%d] = %d, want %d", i, mA.Mem[100+2*n+i], want)
		}
	}
	// The transformation removes the 2n accesses to b.
	memB := stB.MemReads + stB.MemWrites
	memA := stA.MemReads + stA.MemWrites
	if memB-memA != int64(2*n) {
		t.Errorf("memory ops: before %d, after %d, want difference %d", memB, memA, 2*n)
	}
	// And the reference energy drops.
	ep := DefaultEnergyParams()
	if MeasureEnergy(trA, ep) >= MeasureEnergy(trB, ep) {
		t.Error("optimized program should use less energy")
	}
}

func TestSynthesizeProgramValidates(t *testing.T) {
	var pf Profile
	if _, err := SynthesizeProgram(pf, 30, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty mix should be rejected")
	}
}

func TestOperandSwapPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	prog := mustAssemble(t)(MixedALU(80))
	swapped := OperandSwap(prog)
	if len(swapped) != len(prog) {
		t.Fatal("length changed")
	}
	run := func(p Program) [NumRegs]int64 {
		m := NewMachine(DefaultConfig())
		InitMem(m, 100, RandomData(100, rng))
		if _, _, err := m.Run(p, false); err != nil {
			t.Fatal(err)
		}
		return m.Regs
	}
	if run(prog) != run(swapped) {
		t.Error("operand swapping changed architectural results")
	}
}

func TestOperandSwapReducesBusTraffic(t *testing.T) {
	// Blocks with asymmetric source registers benefit from swapping.
	rng := rand.New(rand.NewSource(10))
	var better, trials int
	for trial := 0; trial < 30; trial++ {
		var block []Instr
		for i := 0; i < 20; i++ {
			block = append(block, Instr{
				Op:  []Op{ADD, MUL, AND, OR, XOR}[rng.Intn(5)],
				Rd:  4 + rng.Intn(8),
				Rs1: rng.Intn(16),
				Rs2: rng.Intn(16),
			})
		}
		prev := Instr{Op: NOP}
		before := BusTransitions(block, prev)
		after := BusTransitions(OperandSwap(Program(block)), prev)
		if after > before {
			t.Fatalf("trial %d: swapping increased transitions", trial)
		}
		if after < before {
			better++
		}
		trials++
	}
	if better < trials/2 {
		t.Errorf("swapping improved only %d/%d blocks", better, trials)
	}
}

func TestBasicBlocksSplitAtBranches(t *testing.T) {
	prog := mustAssemble(t)(VectorSum(10))
	blocks := basicBlocks(prog)
	for _, blk := range blocks {
		for pc := blk[0]; pc < blk[1]; pc++ {
			if blk[1]-blk[0] > 1 && (prog[pc].Op.IsBranch() || prog[pc].Op == HALT) {
				t.Fatalf("multi-instruction block [%d,%d) contains control flow at %d", blk[0], blk[1], pc)
			}
		}
	}
}

func TestOptimizeBusTrafficPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	progs := []Program{
		mustAssemble(t)(VectorSum(60)),
		mustAssemble(t)(DotProduct(40)),
		mustAssemble(t)(FIRFilter(5, 24)),
		mustAssemble(t)(MixedALU(40)),
	}
	for pi, prog := range progs {
		opt := OptimizeBusTraffic(prog)
		if len(opt) != len(prog) {
			t.Fatalf("prog %d: length changed", pi)
		}
		data := RandomData(200, rng)
		run := func(p Program) ([NumRegs]int64, int64, *Stats) {
			m := NewMachine(DefaultConfig())
			InitMem(m, 50, data[:50])
			InitMem(m, 100, data)
			st, _, err := m.Run(p, false)
			if err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, v := range m.Mem {
				sum += v
			}
			return m.Regs, sum, st
		}
		r1, m1, st1 := run(prog)
		r2, m2, st2 := run(opt)
		if r1 != r2 || m1 != m2 {
			t.Fatalf("prog %d: optimization changed results", pi)
		}
		if st2.BusTraffic > st1.BusTraffic {
			t.Errorf("prog %d: bus traffic grew %d -> %d", pi, st1.BusTraffic, st2.BusTraffic)
		}
	}
}

func TestMatMulCorrect(t *testing.T) {
	n := 5
	prog := mustAssemble(t)(MatMul(n))
	m := NewMachine(DefaultConfig())
	rng := rand.New(rand.NewSource(13))
	A := RandomData(n*n, rng)
	B := RandomData(n*n, rng)
	InitMem(m, 1000, A)
	InitMem(m, 1000+n*n, B)
	if _, _, err := m.Run(prog, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want int64
			for k := 0; k < n; k++ {
				want += A[i*n+k] * B[k*n+j]
			}
			got := m.Mem[1000+2*n*n+i*n+j]
			if got != want {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestBubbleSortCorrect(t *testing.T) {
	n := 24
	prog := mustAssemble(t)(BubbleSort(n))
	m := NewMachine(DefaultConfig())
	rng := rand.New(rand.NewSource(14))
	data := RandomData(n, rng)
	InitMem(m, 3000, data)
	if _, _, err := m.Run(prog, false); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if m.Mem[3000+i-1] > m.Mem[3000+i] {
			t.Fatalf("not sorted at %d: %d > %d", i, m.Mem[3000+i-1], m.Mem[3000+i])
		}
	}
}

func TestBubbleSortStressesPredictor(t *testing.T) {
	// Data-dependent branches: the swap branch should mispredict far more
	// than a counted loop's branch.
	prog := mustAssemble(t)(BubbleSort(32))
	m := NewMachine(DefaultConfig())
	rng := rand.New(rand.NewSource(15))
	InitMem(m, 3000, RandomData(32, rng))
	st, _, err := m.Run(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchMissRate() < 0.02 {
		t.Errorf("sort branch miss rate %v suspiciously low", st.BranchMissRate())
	}
}

func TestStratifiedEnergyEstimation(t *testing.T) {
	// §II-C2 applied at the software level: estimate a program's mean
	// per-instruction energy from a small stratified sample of the trace
	// instead of evaluating the detailed model everywhere.
	prog := mustAssemble(t)(FIRFilter(8, 256))
	m := NewMachine(DefaultConfig())
	rng := rand.New(rand.NewSource(31))
	InitMem(m, 50, RandomData(8, rng))
	InitMem(m, 100, RandomData(400, rng))
	_, tr, err := m.Run(prog, true)
	if err != nil {
		t.Fatal(err)
	}
	ep := DefaultEnergyParams()
	perInstr := make([]float64, len(tr))
	var prevWord uint64
	for i := range tr {
		single := MeasureEnergy(tr[i:i+1], ep)
		if i > 0 {
			single += ep.StateFactor * float64(bitutil.Hamming(prevWord, tr[i].EncWord))
		}
		perInstr[i] = single
		prevWord = tr[i].EncWord
	}
	full := stats.Mean(perInstr)
	est := stats.StratifiedSample(len(perInstr), 120, 8, rng,
		func(i int) float64 { return perInstr[i] })
	if stats.RelError(est.Mean, full) > 0.08 {
		t.Errorf("stratified estimate %v vs full %v: error too large", est.Mean, full)
	}
	if est.Units > len(perInstr)/10 {
		t.Errorf("sample used %d of %d units — not economical", est.Units, len(perInstr))
	}
}
