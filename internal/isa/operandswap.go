package isa

// Operand swapping (§III-A, Lee/Tiwari [50][51]): commutative operations
// can present their source registers in either order; choosing the order
// that minimizes the Hamming distance between consecutive instruction
// words lowers instruction-bus switching at zero cost.

// isCommutative reports whether swapping Rs1/Rs2 preserves semantics.
func (o Op) isCommutative() bool {
	switch o {
	case ADD, MUL, AND, OR, XOR:
		return true
	}
	return false
}

// OperandSwap returns a copy of the program with commutative operand
// orders chosen greedily to minimize consecutive encoding distance.
// Instruction count and semantics are unchanged, so branch displacements
// stay valid.
func OperandSwap(p Program) Program {
	out := make(Program, len(p))
	copy(out, p)
	var prev uint64
	for i, ins := range out {
		if ins.Op.isCommutative() && ins.Rs1 != ins.Rs2 {
			swapped := ins
			swapped.Rs1, swapped.Rs2 = ins.Rs2, ins.Rs1
			if i > 0 && hammingTo(prev, swapped) < hammingTo(prev, ins) {
				out[i] = swapped
			}
		}
		prev = out[i].Encode()
	}
	return out
}

func hammingTo(prev uint64, ins Instr) int {
	w := ins.Encode()
	d := prev ^ w
	n := 0
	for d != 0 {
		d &= d - 1
		n++
	}
	return n
}
