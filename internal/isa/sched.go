package isa

import (
	"hlpower/internal/bitutil"
)

// TransitionCost scores the instruction-bus cost of executing cur after
// prev: the Hamming distance between the encoded words (the quantity
// cold scheduling [6] minimizes).
func TransitionCost(prev, cur Instr) float64 {
	return float64(bitutil.Hamming(prev.Encode(), cur.Encode()))
}

// dependsOn reports whether b must stay after a (RAW, WAR, WAW hazards,
// and conservative memory ordering).
func dependsOn(a, b Instr) bool {
	aw, bw := a.Writes(), b.Writes()
	if aw >= 0 {
		for _, r := range b.Reads() {
			if r == aw {
				return true // RAW
			}
		}
		if bw == aw {
			return true // WAW
		}
	}
	if bw >= 0 {
		for _, r := range a.Reads() {
			if r == bw {
				return true // WAR
			}
		}
	}
	// Conservative memory ordering: stores are barriers against all
	// memory ops; loads may reorder with loads.
	if a.Op.IsMem() && b.Op.IsMem() && (a.Op == ST || b.Op == ST) {
		return true
	}
	return false
}

// ColdSchedule reorders a basic block (no branches inside) to reduce
// instruction-bus transitions, honouring data dependencies. It is the
// power-cost-priority list scheduler of Su et al. [6]: at each step, of
// the ready instructions, the one with the lowest transition cost from
// the previously scheduled instruction is issued. prev is the
// instruction executed immediately before the block (use a NOP for
// none). cost defaults to TransitionCost when nil.
func ColdSchedule(block []Instr, prev Instr, cost func(a, b Instr) float64) []Instr {
	if cost == nil {
		cost = TransitionCost
	}
	n := len(block)
	// Dependency edges by original index.
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dependsOn(block[i], block[j]) {
				succ[i] = append(succ[i], j)
				indeg[j]++
			}
		}
	}
	scheduled := make([]Instr, 0, n)
	done := make([]bool, n)
	last := prev
	for len(scheduled) < n {
		best := -1
		var bestCost float64
		for i := 0; i < n; i++ {
			if done[i] || indeg[i] > 0 {
				continue
			}
			c := cost(last, block[i])
			if best < 0 || c < bestCost {
				best, bestCost = i, c
			}
		}
		if best < 0 {
			// Dependency cycle is impossible on a straightline block;
			// fall back to original order defensively.
			for i := 0; i < n; i++ {
				if !done[i] {
					best = i
					break
				}
			}
		}
		done[best] = true
		for _, s := range succ[best] {
			indeg[s]--
		}
		scheduled = append(scheduled, block[best])
		last = block[best]
	}
	return scheduled
}

// BusTransitions counts total instruction-bus bit flips across a
// straightline execution of the block following prev.
func BusTransitions(block []Instr, prev Instr) int {
	total := 0
	last := prev.Encode()
	for _, ins := range block {
		w := ins.Encode()
		total += bitutil.Hamming(last, w)
		last = w
	}
	return total
}

// resultsEqual reports whether two straightline blocks leave identical
// architectural state when run from the same start state — used by tests
// to confirm scheduling preserved semantics.
func resultsEqual(a, b []Instr, mem []int64) bool {
	run := func(block []Instr) ([NumRegs]int64, []int64) {
		m := NewMachine(DefaultConfig())
		copy(m.Mem, mem)
		prog := append(append(Program{}, block...), Instr{Op: HALT})
		m.Run(prog, false)
		return m.Regs, m.Mem
	}
	ra, ma := run(a)
	rb, mb := run(b)
	if ra != rb {
		return false
	}
	for i := range ma {
		if ma[i] != mb[i] {
			return false
		}
	}
	return true
}
