package isa

import (
	"errors"
	"fmt"

	"hlpower/internal/bitutil"
	"hlpower/internal/budget"
)

// CacheConfig sizes a direct-mapped cache.
type CacheConfig struct {
	Lines    int // number of lines (power of two)
	LineSize int // words per line (power of two)
}

// cache is a direct-mapped cache model.
type cache struct {
	cfg  CacheConfig
	tags []int64 // -1 = invalid
}

func newCache(cfg CacheConfig) *cache {
	if cfg.Lines <= 0 {
		cfg.Lines = 64
	}
	if cfg.LineSize <= 0 {
		cfg.LineSize = 4
	}
	t := make([]int64, cfg.Lines)
	for i := range t {
		t[i] = -1
	}
	return &cache{cfg: cfg, tags: t}
}

// access returns true on hit and updates the line on miss.
func (c *cache) access(addr int64) bool {
	block := addr / int64(c.cfg.LineSize)
	line := int(block % int64(c.cfg.Lines))
	if line < 0 {
		line += c.cfg.Lines
	}
	if c.tags[line] == block {
		return true
	}
	c.tags[line] = block
	return false
}

// MachineConfig parameterizes the simulated core.
type MachineConfig struct {
	ICache, DCache CacheConfig
	// Penalties in cycles.
	ICacheMissPenalty int
	DCacheMissPenalty int
	BranchMissPenalty int
	LoadUsePenalty    int
	MemSize           int
	MaxInstructions   int64
}

// DefaultConfig returns a small two-way-of-nothing laptop-scale core: a
// direct-mapped 64-line I-cache and D-cache, 2-bit branch predictors,
// and classic 5-stage-pipeline penalties.
func DefaultConfig() MachineConfig {
	return MachineConfig{
		ICache:            CacheConfig{Lines: 64, LineSize: 4},
		DCache:            CacheConfig{Lines: 64, LineSize: 4},
		ICacheMissPenalty: 8,
		DCacheMissPenalty: 10,
		BranchMissPenalty: 2,
		LoadUsePenalty:    1,
		MemSize:           1 << 16,
		MaxInstructions:   5_000_000,
	}
}

// Stats aggregates everything the profile extractor and the energy
// models need from one run.
type Stats struct {
	Instructions int64
	Cycles       int64
	OpCounts     [NumOps]int64
	PairCounts   map[[2]Op]int64 // consecutive (prev, cur) executions
	ICacheMisses int64
	DCacheMisses int64
	BranchCount  int64
	BranchMisses int64
	LoadUseStall int64
	MemReads     int64
	MemWrites    int64
	BusTraffic   int64 // instruction-bus bit transitions
}

// MissRateI returns the instruction-cache miss rate.
func (s *Stats) MissRateI() float64 { return rate(s.ICacheMisses, s.Instructions) }

// MissRateD returns the data-cache miss rate per memory op.
func (s *Stats) MissRateD() float64 { return rate(s.DCacheMisses, s.MemReads+s.MemWrites) }

// BranchMissRate returns the predictor miss rate.
func (s *Stats) BranchMissRate() float64 { return rate(s.BranchMisses, s.BranchCount) }

func rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Machine is the architectural simulator.
type Machine struct {
	Cfg    MachineConfig
	Regs   [NumRegs]int64
	Mem    []int64
	icache *cache
	dcache *cache
	// 2-bit saturating branch predictor, direct-mapped on PC.
	predictor []uint8
}

// NewMachine builds a machine with zeroed registers and memory.
func NewMachine(cfg MachineConfig) *Machine {
	if cfg.MemSize <= 0 {
		cfg.MemSize = 1 << 16
	}
	if cfg.MaxInstructions <= 0 {
		cfg.MaxInstructions = 5_000_000
	}
	return &Machine{
		Cfg:       cfg,
		Mem:       make([]int64, cfg.MemSize),
		icache:    newCache(cfg.ICache),
		dcache:    newCache(cfg.DCache),
		predictor: make([]uint8, 256),
	}
}

// TraceEntry records one executed instruction for trace-driven analyses.
type TraceEntry struct {
	PC      int
	Instr   Instr
	EncWord uint64
	// Per-instruction event flags for the energy model.
	ICacheMiss bool
	DCacheMiss bool
	BranchMiss bool
	LoadUse    bool
	// Operand values at execution (for data-dependent energy).
	SrcA, SrcB int64
	Result     int64
}

// Run executes the program until HALT, the end of the program, or the
// instruction limit. When keepTrace is set the full execution trace is
// returned (memory-hungry for long runs).
func (m *Machine) Run(p Program, keepTrace bool) (*Stats, []TraceEntry, error) {
	return m.RunBudget(nil, p, keepTrace)
}

// predecoded is the per-instruction data the hot loop would otherwise
// recompute on every executed step: the encoded bus word, the read-set
// (at most two registers), and the written register. A program is
// decoded once per run instead of once per dynamic instruction — the
// same instruction inside a loop body executes millions of times.
type predecoded struct {
	word   uint64
	reads  [2]int8 // register indices; only the first nReads are valid
	nReads int8
	writes int8 // written register, or -1
}

// predecode precomputes the static per-instruction tables for p.
func predecode(p Program) []predecoded {
	d := make([]predecoded, len(p))
	for i, ins := range p {
		pd := predecoded{word: ins.Encode(), writes: int8(ins.Writes())}
		switch ins.Op {
		case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, ST, BEQ, BNE:
			pd.reads = [2]int8{int8(ins.Rs1), int8(ins.Rs2)}
			pd.nReads = 2
		case ADDI, LD:
			pd.reads[0] = int8(ins.Rs1)
			pd.nReads = 1
		}
		d[i] = pd
	}
	return d
}

// RunBudget is Run governed by a resource budget: each executed
// instruction charges one step, so deadlines and cancellation cut off
// runaway programs. On exhaustion the stats and trace accumulated so
// far are returned alongside an error matching budget.ErrExceeded.
func (m *Machine) RunBudget(b *budget.Budget, p Program, keepTrace bool) (*Stats, []TraceEntry, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	st := &Stats{PairCounts: make(map[[2]Op]int64)}
	dec := predecode(p)
	var trace []TraceEntry
	pc := 0
	var prevOp Op = NOP
	var prevWord uint64
	var prevWrote int8 = -1
	first := true
	for pc < len(p) {
		if st.Instructions >= m.Cfg.MaxInstructions {
			return st, trace, errors.New("isa: instruction limit exceeded")
		}
		if err := b.Step(1); err != nil {
			return st, trace, err
		}
		ins := p[pc]
		if ins.Op == HALT {
			break
		}
		pd := &dec[pc]
		e := TraceEntry{PC: pc, Instr: ins, EncWord: pd.word}

		// Fetch.
		if !m.icache.access(int64(pc)) {
			e.ICacheMiss = true
			st.ICacheMisses++
			st.Cycles += int64(m.Cfg.ICacheMissPenalty)
		}
		if !first {
			st.PairCounts[[2]Op{prevOp, ins.Op}]++
			st.BusTraffic += int64(bitutil.Hamming(prevWord, e.EncWord))
		}
		// Load-use hazard: previous instruction loaded a register we read.
		if prevOp == LD && prevWrote >= 0 {
			for j := int8(0); j < pd.nReads; j++ {
				if pd.reads[j] == prevWrote {
					e.LoadUse = true
					st.LoadUseStall++
					st.Cycles += int64(m.Cfg.LoadUsePenalty)
					break
				}
			}
		}

		// Execute.
		nextPC := pc + 1
		switch ins.Op {
		case NOP:
		case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR:
			a, b := m.Regs[ins.Rs1], m.Regs[ins.Rs2]
			e.SrcA, e.SrcB = a, b
			var r int64
			switch ins.Op {
			case ADD:
				r = a + b
			case SUB:
				r = a - b
			case MUL:
				r = a * b
			case AND:
				r = a & b
			case OR:
				r = a | b
			case XOR:
				r = a ^ b
			case SHL:
				r = a << uint(b&63)
			case SHR:
				r = int64(uint64(a) >> uint(b&63))
			}
			m.Regs[ins.Rd] = r
			e.Result = r
		case ADDI:
			e.SrcA = m.Regs[ins.Rs1]
			m.Regs[ins.Rd] = m.Regs[ins.Rs1] + ins.Imm
			e.Result = m.Regs[ins.Rd]
		case LDI:
			m.Regs[ins.Rd] = ins.Imm
			e.Result = ins.Imm
		case LD, ST:
			addr := m.Regs[ins.Rs1] + ins.Imm
			if addr < 0 || addr >= int64(len(m.Mem)) {
				return st, trace, fmt.Errorf("isa: pc %d: address %d out of range", pc, addr)
			}
			e.SrcA = addr
			if !m.dcache.access(addr) {
				e.DCacheMiss = true
				st.DCacheMisses++
				st.Cycles += int64(m.Cfg.DCacheMissPenalty)
			}
			if ins.Op == LD {
				st.MemReads++
				m.Regs[ins.Rd] = m.Mem[addr]
				e.Result = m.Regs[ins.Rd]
			} else {
				st.MemWrites++
				e.SrcB = m.Regs[ins.Rs2]
				m.Mem[addr] = m.Regs[ins.Rs2]
			}
		case BEQ, BNE, JMP:
			st.BranchCount++
			taken := false
			switch ins.Op {
			case BEQ:
				taken = m.Regs[ins.Rs1] == m.Regs[ins.Rs2]
			case BNE:
				taken = m.Regs[ins.Rs1] != m.Regs[ins.Rs2]
			case JMP:
				taken = true
			}
			slot := pc & 0xFF
			predictTaken := m.predictor[slot] >= 2
			if predictTaken != taken {
				e.BranchMiss = true
				st.BranchMisses++
				st.Cycles += int64(m.Cfg.BranchMissPenalty)
			}
			// Update the 2-bit counter.
			if taken && m.predictor[slot] < 3 {
				m.predictor[slot]++
			} else if !taken && m.predictor[slot] > 0 {
				m.predictor[slot]--
			}
			if taken {
				nextPC = pc + 1 + int(ins.Imm)
			}
		default:
			return st, trace, fmt.Errorf("isa: pc %d: unknown op %v", pc, ins.Op)
		}

		st.Instructions++
		st.Cycles++
		st.OpCounts[ins.Op]++
		if keepTrace {
			trace = append(trace, e)
		}
		prevOp = ins.Op
		prevWord = pd.word
		prevWrote = pd.writes
		first = false
		pc = nextPC
	}
	return st, trace, nil
}
