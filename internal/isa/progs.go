package isa

import "math/rand"

// Benchmark programs for the software-level experiments. Register
// conventions are local to each program; memory layout starts arrays at
// fixed bases.

// VectorSum returns a program summing n array elements at base 100 into
// r3.
func VectorSum(n int) (Program, error) {
	a := NewAssembler()
	a.Ldi(1, 0) // i
	a.Ldi(2, int64(n))
	a.Ldi(3, 0)   // sum
	a.Ldi(4, 100) // pointer
	a.Label("loop")
	a.Ld(5, 4, 0)
	a.Alu(ADD, 3, 3, 5)
	a.Addi(4, 4, 1)
	a.Addi(1, 1, 1)
	a.Branch(BNE, 1, 2, "loop")
	a.Halt()
	return a.Assemble()
}

// DotProduct returns a program computing Σ x[i]·y[i] with x at 100 and
// y at 100+n, result in r3.
func DotProduct(n int) (Program, error) {
	a := NewAssembler()
	a.Ldi(1, 0)
	a.Ldi(2, int64(n))
	a.Ldi(3, 0)
	a.Ldi(4, 100)
	a.Ldi(5, int64(100+n))
	a.Label("loop")
	a.Ld(6, 4, 0)
	a.Ld(7, 5, 0)
	a.Alu(MUL, 8, 6, 7)
	a.Alu(ADD, 3, 3, 8)
	a.Addi(4, 4, 1)
	a.Addi(5, 5, 1)
	a.Addi(1, 1, 1)
	a.Branch(BNE, 1, 2, "loop")
	a.Halt()
	return a.Assemble()
}

// FIRFilter returns a program running a taps-tap FIR over n input
// samples: coefficients at base 50, input at 100, output at 100+n+taps.
func FIRFilter(taps, n int) (Program, error) {
	a := NewAssembler()
	a.Ldi(1, 0) // output index
	a.Ldi(2, int64(n))
	a.Label("outer")
	a.Ldi(3, 0) // acc
	a.Ldi(4, 0) // tap index
	a.Ldi(5, int64(taps))
	a.Label("inner")
	// r6 = coeff[t]; r7 = x[i+t]
	a.Alu(ADD, 8, 4, 0) // r8 = t (r0 always 0)
	a.Addi(8, 8, 50)
	a.Ld(6, 8, 0)
	a.Alu(ADD, 9, 1, 4)
	a.Addi(9, 9, 100)
	a.Ld(7, 9, 0)
	a.Alu(MUL, 10, 6, 7)
	a.Alu(ADD, 3, 3, 10)
	a.Addi(4, 4, 1)
	a.Branch(BNE, 4, 5, "inner")
	a.Alu(ADD, 11, 1, 0)
	a.Addi(11, 11, int64(100+n+taps))
	a.St(11, 0, 3)
	a.Addi(1, 1, 1)
	a.Branch(BNE, 1, 2, "outer")
	a.Halt()
	return a.Assemble()
}

// StridedWalk touches n addresses with the given stride starting at
// base 200 — the cache-behaviour knob.
func StridedWalk(n, stride int) (Program, error) {
	a := NewAssembler()
	a.Ldi(1, 0)
	a.Ldi(2, int64(n))
	a.Ldi(4, 200)
	a.Label("loop")
	a.Ld(5, 4, 0)
	a.Addi(4, 4, int64(stride))
	a.Addi(1, 1, 1)
	a.Branch(BNE, 1, 2, "loop")
	a.Halt()
	return a.Assemble()
}

// MixedALU runs n iterations of a varied ALU body (no memory traffic),
// exercising many instruction pairs for the Tiwari experiments.
func MixedALU(n int) (Program, error) {
	a := NewAssembler()
	a.Ldi(1, 0)
	a.Ldi(2, int64(n))
	a.Ldi(3, 0x55)
	a.Ldi(4, 0x0F)
	a.Label("loop")
	a.Alu(ADD, 5, 3, 4)
	a.Alu(MUL, 6, 5, 3)
	a.Alu(XOR, 3, 6, 4)
	a.Alu(AND, 7, 3, 5)
	a.Alu(OR, 4, 7, 6)
	a.Alu(SHR, 4, 4, 0) // shift by r0 = 0 keeps values bounded
	a.Addi(1, 1, 1)
	a.Branch(BNE, 1, 2, "loop")
	a.Halt()
	return a.Assemble()
}

// InitMem fills machine memory starting at base with the given values.
func InitMem(m *Machine, base int, values []int64) {
	for i, v := range values {
		if base+i < len(m.Mem) {
			m.Mem[base+i] = v
		}
	}
}

// RandomData returns n pseudo-random words bounded to keep MUL results
// small.
func RandomData(n int, rng *rand.Rand) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(256))
	}
	return out
}

// MemOptPair builds the Fig. 2 example: the "before" program writes the
// intermediate array b to memory in one loop and reads it back in a
// second (2n extra memory accesses); the "after" program fuses the loops
// and keeps b[i] in a register. Both compute c[i] = (a[i]+k1)*k2 over n
// elements with a at 100, b at 100+n, c at 100+2n.
func MemOptPair(n int) (before, after Program, err error) {
	// Before: loop 1 computes b[i] = a[i] + k1; loop 2 computes
	// c[i] = b[i] * k2.
	a := NewAssembler()
	a.Ldi(1, 0)
	a.Ldi(2, int64(n))
	a.Ldi(3, 7) // k1
	a.Label("loop1")
	a.Alu(ADD, 8, 1, 0)
	a.Addi(8, 8, 100) // &a[i]
	a.Ld(5, 8, 0)
	a.Alu(ADD, 6, 5, 3)
	a.Addi(8, 8, int64(n)) // &b[i]
	a.St(8, 0, 6)
	a.Addi(1, 1, 1)
	a.Branch(BNE, 1, 2, "loop1")
	a.Ldi(1, 0)
	a.Ldi(4, 3) // k2
	a.Label("loop2")
	a.Alu(ADD, 8, 1, 0)
	a.Addi(8, 8, int64(100+n)) // &b[i]
	a.Ld(6, 8, 0)
	a.Alu(MUL, 7, 6, 4)
	a.Addi(8, 8, int64(n)) // &c[i]
	a.St(8, 0, 7)
	a.Addi(1, 1, 1)
	a.Branch(BNE, 1, 2, "loop2")
	a.Halt()
	before, err = a.Assemble()
	if err != nil {
		return nil, nil, err
	}

	b := NewAssembler()
	b.Ldi(1, 0)
	b.Ldi(2, int64(n))
	b.Ldi(3, 7)
	b.Ldi(4, 3)
	b.Label("loop")
	b.Alu(ADD, 8, 1, 0)
	b.Addi(8, 8, 100) // &a[i]
	b.Ld(5, 8, 0)
	b.Alu(ADD, 6, 5, 3) // b[i] stays in r6
	b.Alu(MUL, 7, 6, 4)
	b.Addi(8, 8, int64(2*n)) // &c[i]
	b.St(8, 0, 7)
	b.Addi(1, 1, 1)
	b.Branch(BNE, 1, 2, "loop")
	b.Halt()
	after, err = b.Assemble()
	if err != nil {
		return nil, nil, err
	}
	return before, after, nil
}

// MatMul multiplies two n×n matrices: A at base 1000, B at 1000+n²,
// C at 1000+2n² (row-major). A heavier, cache-interesting workload.
func MatMul(n int) (Program, error) {
	a := NewAssembler()
	base := int64(1000)
	a.Ldi(1, 0) // i
	a.Ldi(2, int64(n))
	a.Label("iloop")
	a.Ldi(3, 0) // j
	a.Label("jloop")
	a.Ldi(4, 0) // k
	a.Ldi(5, 0) // acc
	a.Label("kloop")
	// r6 = A[i*n+k]
	a.Alu(MUL, 6, 1, 2)
	a.Alu(ADD, 6, 6, 4)
	a.Addi(6, 6, base)
	a.Ld(7, 6, 0)
	// r8 = B[k*n+j]
	a.Alu(MUL, 8, 4, 2)
	a.Alu(ADD, 8, 8, 3)
	a.Addi(8, 8, base+int64(n*n))
	a.Ld(9, 8, 0)
	a.Alu(MUL, 10, 7, 9)
	a.Alu(ADD, 5, 5, 10)
	a.Addi(4, 4, 1)
	a.Branch(BNE, 4, 2, "kloop")
	// C[i*n+j] = acc
	a.Alu(MUL, 11, 1, 2)
	a.Alu(ADD, 11, 11, 3)
	a.Addi(11, 11, base+int64(2*n*n))
	a.St(11, 0, 5)
	a.Addi(3, 3, 1)
	a.Branch(BNE, 3, 2, "jloop")
	a.Addi(1, 1, 1)
	a.Branch(BNE, 1, 2, "iloop")
	a.Halt()
	return a.Assemble()
}

// BubbleSort sorts n words at base 3000 in place — a branchy,
// data-dependent control-flow workload (bad for the branch predictor).
func BubbleSort(n int) (Program, error) {
	a := NewAssembler()
	base := int64(3000)
	a.Ldi(1, 0) // i
	a.Ldi(2, int64(n-1))
	a.Label("outer")
	a.Ldi(3, 0)         // j
	a.Alu(SUB, 4, 2, 1) // limit = n-1-i
	a.Label("inner")
	a.Alu(ADD, 5, 3, 0)
	a.Addi(5, 5, base)
	a.Ld(6, 5, 0) // x[j]
	a.Ld(7, 5, 1) // x[j+1]
	// if x[j] <= x[j+1] skip the swap: compute lt = x[j+1] < x[j]
	a.Emit(Instr{Op: SUB, Rd: 8, Rs1: 6, Rs2: 7}) // r8 = x[j]-x[j+1]
	// Branch if r8 <= 0: we only have BEQ/BNE, so shift sign bit down.
	a.Emit(Instr{Op: SHR, Rd: 9, Rs1: 8, Rs2: 10}) // r10 preloaded with 63
	a.Branch(BNE, 9, 11, "noswap")                 // r11 preloaded with 0... sign=1 means negative: skip swap when NOT positive
	a.Branch(BEQ, 8, 11, "noswap")                 // equal: no swap
	a.St(5, 0, 7)
	a.St(5, 1, 6)
	a.Label("noswap")
	a.Addi(3, 3, 1)
	a.Branch(BNE, 3, 4, "inner")
	a.Addi(1, 1, 1)
	a.Branch(BNE, 1, 2, "outer")
	a.Halt()
	prog := append(Program{
		{Op: LDI, Rd: 10, Imm: 63},
		{Op: LDI, Rd: 11, Imm: 0},
	}, nil...)
	body, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	prog = append(prog, body...)
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}
