package isa

import (
	"math/bits"
	"sort"

	"hlpower/internal/bitutil"
)

// EnergyParams defines the ground-truth per-instruction energy of the
// simulated core — the stand-in for Tiwari's physical current
// measurements. Energy of one executed instruction is its base cost,
// plus a circuit-state term proportional to the Hamming distance between
// consecutive instruction words, plus a data-dependent term the
// instruction-level model deliberately cannot see, plus stall and cache
// overheads.
type EnergyParams struct {
	Base        [NumOps]float64
	StateFactor float64 // per instruction-bus bit flip
	DataFactor  float64 // per result bit set (hidden from the model)
	StallEnergy float64
	IMissEnergy float64
	DMissEnergy float64
	BMissEnergy float64
}

// DefaultEnergyParams returns a plausible cost table: multiplies are the
// most expensive, memory ops cost more than ALU ops, and the hidden data
// term is a small fraction of the base costs.
func DefaultEnergyParams() EnergyParams {
	p := EnergyParams{
		StateFactor: 0.6,
		DataFactor:  0.05,
		StallEnergy: 2.0,
		IMissEnergy: 18.0,
		DMissEnergy: 22.0,
		BMissEnergy: 5.0,
	}
	base := map[Op]float64{
		NOP: 2, ADD: 10, SUB: 10, AND: 8, OR: 8, XOR: 9, SHL: 9, SHR: 9,
		MUL: 34, ADDI: 10, LDI: 6, LD: 20, ST: 18, BEQ: 12, BNE: 12,
		JMP: 8, HALT: 0,
	}
	for op, c := range base {
		p.Base[op] = c
	}
	return p
}

// MeasureEnergy is the detailed reference ("RT-level") energy evaluation
// of an execution trace: it walks every instruction and applies the full
// ground-truth cost model, including the data-dependent term.
func MeasureEnergy(trace []TraceEntry, p EnergyParams) float64 {
	var e float64
	var prevWord uint64
	for i, t := range trace {
		e += p.Base[t.Instr.Op]
		if i > 0 {
			e += p.StateFactor * float64(bitutil.Hamming(prevWord, t.EncWord))
		}
		e += p.DataFactor * float64(bits.OnesCount64(uint64(t.Result)))
		if t.LoadUse {
			e += p.StallEnergy
		}
		if t.ICacheMiss {
			e += p.IMissEnergy
		}
		if t.DCacheMiss {
			e += p.DMissEnergy
		}
		if t.BranchMiss {
			e += p.BMissEnergy
		}
		prevWord = t.EncWord
	}
	return e
}

// TiwariModel is the instruction-level power model of [7]:
// Energy = Σ BC_i·N_i + Σ SC_ij·N_ij + Σ OC_k, with base costs BC
// measured from single-instruction loops, circuit-state costs SC from
// alternating pairs, and other-effect costs OC for stalls and misses.
type TiwariModel struct {
	Base  [NumOps]float64
	State map[[2]Op]float64
	// Other-effect costs (taken from separate characterization).
	StallEnergy float64
	IMissEnergy float64
	DMissEnergy float64
	BMissEnergy float64
}

// characterizableOps are the opcodes included in characterization (HALT
// terminates and is skipped).
func characterizableOps() []Op {
	ops := make([]Op, 0, NumOps)
	for o := Op(0); o < Op(NumOps); o++ {
		if o == HALT {
			continue
		}
		ops = append(ops, o)
	}
	return ops
}

// straightline builds a K-instruction characterization block of a single
// opcode with safe operands (addresses near 0, never-taken branches).
func charInstr(op Op) Instr {
	switch op {
	case LD:
		return Instr{Op: LD, Rd: 3, Rs1: 0, Imm: 8}
	case ST:
		return Instr{Op: ST, Rs1: 0, Rs2: 2, Imm: 9}
	case BEQ:
		return Instr{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 0} // r1 != r2: not taken
	case BNE:
		return Instr{Op: BNE, Rs1: 1, Rs2: 1, Imm: 0} // equal: not taken
	case JMP:
		return Instr{Op: JMP, Imm: 0}
	case LDI:
		return Instr{Op: LDI, Rd: 4, Imm: 21}
	case ADDI:
		return Instr{Op: ADDI, Rd: 4, Rs1: 1, Imm: 3}
	default:
		return Instr{Op: op, Rd: 4, Rs1: 1, Rs2: 2}
	}
}

// charProgram returns a program that sets up operand registers and then
// runs the body instructions straightline.
func charProgram(body []Instr) Program {
	p := Program{
		{Op: LDI, Rd: 1, Imm: 0x35},
		{Op: LDI, Rd: 2, Imm: 0x1C},
	}
	p = append(p, body...)
	p = append(p, Instr{Op: HALT})
	return p
}

// measurePerInstr runs a characterization block and returns the average
// ground-truth energy per body instruction (setup excluded).
func measurePerInstr(cfg MachineConfig, p EnergyParams, body []Instr) (float64, error) {
	prog := charProgram(body)
	m := NewMachine(cfg)
	_, trace, err := m.Run(prog, true)
	if err != nil {
		return 0, err
	}
	// Drop the two setup instructions from the measurement.
	if len(trace) < 3 {
		return 0, nil
	}
	e := MeasureEnergy(trace[2:], p)
	return e / float64(len(trace)-2), nil
}

// CharacterizeTiwari measures base and circuit-state costs exactly the
// way [7] does on hardware: long same-instruction blocks for BC_i, and
// alternating-pair blocks for SC_ij (the extra cost beyond the average
// of the two base costs). The other-effect costs are copied from the
// separately known penalty characterization.
func CharacterizeTiwari(cfg MachineConfig, p EnergyParams) (*TiwariModel, error) {
	const K = 256
	model := &TiwariModel{
		State:       make(map[[2]Op]float64),
		StallEnergy: p.StallEnergy,
		IMissEnergy: p.IMissEnergy,
		DMissEnergy: p.DMissEnergy,
		BMissEnergy: p.BMissEnergy,
	}
	ops := characterizableOps()
	for _, op := range ops {
		body := make([]Instr, K)
		for i := range body {
			body[i] = charInstr(op)
		}
		e, err := measurePerInstr(cfg, p, body)
		if err != nil {
			return nil, err
		}
		model.Base[op] = e
	}
	for _, a := range ops {
		for _, b := range ops {
			if a >= b {
				continue
			}
			body := make([]Instr, K)
			for i := range body {
				if i%2 == 0 {
					body[i] = charInstr(a)
				} else {
					body[i] = charInstr(b)
				}
			}
			e, err := measurePerInstr(cfg, p, body)
			if err != nil {
				return nil, err
			}
			sc := e - (model.Base[a]+model.Base[b])/2
			if sc < 0 {
				sc = 0
			}
			model.State[[2]Op{a, b}] = sc
			model.State[[2]Op{b, a}] = sc
		}
	}
	return model, nil
}

// Predict evaluates the instruction-level model on a program's run
// statistics — no trace needed, exactly the Σ BC·N + Σ SC·N + Σ OC form.
// The circuit-state terms are accumulated in sorted pair order, not map
// order: floating-point addition is order-sensitive in the last ulps,
// and predictions must be bit-reproducible across runs for the
// determinism guarantees the parallel estimation engine makes.
func (m *TiwariModel) Predict(st *Stats) float64 {
	var e float64
	for op, n := range st.OpCounts {
		e += m.Base[op] * float64(n)
	}
	pairs := make([][2]Op, 0, len(st.PairCounts))
	for pair := range st.PairCounts {
		if pair[0] == pair[1] {
			continue // same-op adjacency is already inside BC
		}
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pair := range pairs {
		e += m.State[pair] * float64(st.PairCounts[pair])
	}
	e += m.StallEnergy * float64(st.LoadUseStall)
	e += m.IMissEnergy * float64(st.ICacheMisses)
	e += m.DMissEnergy * float64(st.DCacheMisses)
	e += m.BMissEnergy * float64(st.BranchMisses)
	return e
}
