// Package isa implements the processor substrate for the software-level
// techniques of §II-A and §III-A: a small load/store RISC ISA, an
// architectural (fast) simulator with instruction/data caches, a branch
// predictor and pipeline-stall modeling, a detailed (slow) reference
// simulator acting as the power ground truth, the Tiwari instruction-
// level energy model (base + circuit-state + other effects), cold
// scheduling, characteristic-profile extraction, and profile-driven
// program synthesis.
package isa

import (
	"fmt"
)

// Op enumerates the instruction set.
type Op uint8

// Instruction opcodes. Loads/stores address memory as Rs1+Imm; branches
// compare Rs1 against Rs2 and jump by Imm instructions.
const (
	NOP Op = iota
	ADD
	SUB
	MUL
	AND
	OR
	XOR
	SHL
	SHR
	ADDI // Rd = Rs1 + Imm
	LDI  // Rd = Imm
	LD   // Rd = mem[Rs1+Imm]
	ST   // mem[Rs1+Imm] = Rs2
	BEQ  // if R[Rs1] == R[Rs2]: pc += Imm
	BNE  // if R[Rs1] != R[Rs2]: pc += Imm
	JMP  // pc += Imm
	HALT
	numOps
)

// NumOps is the number of distinct opcodes.
const NumOps = int(numOps)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", AND: "and", OR: "or",
	XOR: "xor", SHL: "shl", SHR: "shr", ADDI: "addi", LDI: "ldi",
	LD: "ld", ST: "st", BEQ: "beq", BNE: "bne", JMP: "jmp", HALT: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether the opcode can redirect control flow.
func (o Op) IsBranch() bool { return o == BEQ || o == BNE || o == JMP }

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool { return o == LD || o == ST }

// NumRegs is the architectural register count.
const NumRegs = 16

// Instr is one instruction. Rd/Rs1/Rs2 index registers; Imm is a signed
// immediate (branch displacement in instructions, or address offset).
type Instr struct {
	Op           Op
	Rd, Rs1, Rs2 int
	Imm          int64
}

// Encode packs the instruction into a 32-bit word (returned as uint64
// for the bit utilities): [31:26]=op, [25:22]=rd, [21:18]=rs1,
// [17:14]=rs2, [13:0]=imm (two's complement). This is the word whose
// transitions the instruction-bus techniques count.
func (i Instr) Encode() uint64 {
	imm := uint64(i.Imm) & 0x3FFF
	return uint64(i.Op)<<26 |
		uint64(i.Rd&0xF)<<22 |
		uint64(i.Rs1&0xF)<<18 |
		uint64(i.Rs2&0xF)<<14 |
		imm
}

func (i Instr) String() string {
	switch {
	case i.Op == HALT || i.Op == NOP:
		return i.Op.String()
	case i.Op == JMP:
		return fmt.Sprintf("jmp %+d", i.Imm)
	case i.Op == BEQ || i.Op == BNE:
		return fmt.Sprintf("%s r%d, r%d, %+d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case i.Op == LD:
		return fmt.Sprintf("ld r%d, %d(r%d)", i.Rd, i.Imm, i.Rs1)
	case i.Op == ST:
		return fmt.Sprintf("st r%d, %d(r%d)", i.Rs2, i.Imm, i.Rs1)
	case i.Op == LDI:
		return fmt.Sprintf("ldi r%d, %d", i.Rd, i.Imm)
	case i.Op == ADDI:
		return fmt.Sprintf("addi r%d, r%d, %d", i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// Program is an instruction sequence; execution starts at index 0.
type Program []Instr

// Validate checks register indices and branch targets.
func (p Program) Validate() error {
	for pc, ins := range p {
		if ins.Rd < 0 || ins.Rd >= NumRegs || ins.Rs1 < 0 || ins.Rs1 >= NumRegs ||
			ins.Rs2 < 0 || ins.Rs2 >= NumRegs {
			return fmt.Errorf("isa: instruction %d: register out of range", pc)
		}
		if ins.Op.IsBranch() {
			tgt := pc + 1 + int(ins.Imm)
			if tgt < 0 || tgt > len(p) {
				return fmt.Errorf("isa: instruction %d: branch target %d out of range", pc, tgt)
			}
		}
	}
	return nil
}

// Reads returns the registers an instruction reads.
func (i Instr) Reads() []int {
	switch i.Op {
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR:
		return []int{i.Rs1, i.Rs2}
	case ADDI, LD:
		return []int{i.Rs1}
	case ST:
		return []int{i.Rs1, i.Rs2}
	case BEQ, BNE:
		return []int{i.Rs1, i.Rs2}
	default:
		return nil
	}
}

// Writes returns the register the instruction writes, or -1.
func (i Instr) Writes() int {
	switch i.Op {
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, ADDI, LDI, LD:
		return i.Rd
	default:
		return -1
	}
}
