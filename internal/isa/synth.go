package isa

import (
	"fmt"
	"math/rand"
)

// Profile is the characteristic profile of §II-A [8]: everything the
// program synthesizer needs to reproduce a long trace's power behaviour
// with a much shorter one.
type Profile struct {
	Mix            [NumOps]float64 // fraction of executed instructions per opcode
	DMissRate      float64         // data-cache misses per memory access
	BranchMissRate float64
	Instructions   int64
	EnergyPerInstr float64 // (recorded for validation only, not used in synthesis)
}

// ExtractProfile derives the characteristic profile from architectural-
// simulation statistics — the fast pass of the profile-driven flow.
func ExtractProfile(st *Stats) Profile {
	var pf Profile
	if st.Instructions == 0 {
		return pf
	}
	for op := range st.OpCounts {
		pf.Mix[op] = float64(st.OpCounts[op]) / float64(st.Instructions)
	}
	pf.DMissRate = st.MissRateD()
	pf.BranchMissRate = st.BranchMissRate()
	pf.Instructions = st.Instructions
	return pf
}

// SynthesizeProgram builds a short program whose executed-instruction
// profile approximates pf: a loop whose body is sampled from the
// instruction mix, with memory operations split between an always-
// missing pointer walk and a cache-resident address to match the data-
// miss rate, and data-dependent branches mixed with predictable ones to
// match the branch miss rate. This is the heuristic stand-in for the
// mixed-ILP construction of [8]; see DESIGN.md.
func SynthesizeProgram(pf Profile, bodyLen, iterations int, rng *rand.Rand) (Program, error) {
	if bodyLen < 8 {
		bodyLen = 8
	}
	a := NewAssembler()
	// Register plan: r1 loop counter, r2 limit, r3/r4 data regs,
	// r5 scratch, r6 hit pointer, r7 miss pointer, r8 LCG state,
	// r9 branch operand, r10 line stride, r12 zero, r13 one.
	a.Ldi(1, 0)
	a.Ldi(2, int64(iterations))
	a.Ldi(3, 0x35)
	a.Ldi(4, 0x1C)
	a.Ldi(6, 100)  // cache-resident address
	a.Ldi(7, 4096) // miss pointer start
	a.Ldi(8, 12345)
	a.Ldi(10, 64) // larger than a cache way: consecutive accesses miss
	a.Ldi(12, 0)
	a.Ldi(13, 1)
	a.Label("loop")

	// Build the body from the mix. Branch ops are emitted as forward
	// skips of zero instructions: taken or not, control flow is the
	// same, but the predictor still exercises them.
	type slot struct{ op Op }
	var body []slot
	// Deterministic largest-remainder apportionment of bodyLen slots.
	type share struct {
		op    Op
		exact float64
		count int
	}
	var shares []share
	var totalMix float64
	for op := Op(0); op < Op(NumOps); op++ {
		if op == HALT {
			continue
		}
		totalMix += pf.Mix[op]
	}
	if totalMix <= 0 {
		return nil, fmt.Errorf("isa: empty profile mix")
	}
	assigned := 0
	for op := Op(0); op < Op(NumOps); op++ {
		if op == HALT || pf.Mix[op] == 0 {
			continue
		}
		exact := pf.Mix[op] / totalMix * float64(bodyLen)
		c := int(exact)
		assigned += c
		shares = append(shares, share{op: op, exact: exact - float64(c), count: c})
	}
	for assigned < bodyLen && len(shares) > 0 {
		best := 0
		for i := range shares {
			if shares[i].exact > shares[best].exact {
				best = i
			}
		}
		shares[best].count++
		shares[best].exact = -1
		assigned++
	}
	for _, s := range shares {
		for i := 0; i < s.count; i++ {
			body = append(body, slot{op: s.op})
		}
	}
	rng.Shuffle(len(body), func(i, j int) { body[i], body[j] = body[j], body[i] })

	// Decide how many memory ops walk the missing pointer.
	memSlots := 0
	for _, s := range body {
		if s.op.IsMem() {
			memSlots++
		}
	}
	missSlots := int(pf.DMissRate*float64(memSlots) + 0.5)
	// Random (mispredicting) branch fraction: a 50/50 data branch
	// misses ~half the time under 2-bit prediction.
	branchSlots := 0
	for _, s := range body {
		if s.op.IsBranch() {
			branchSlots++
		}
	}
	randomBranches := int(2*pf.BranchMissRate*float64(branchSlots) + 0.5)
	if randomBranches > branchSlots {
		randomBranches = branchSlots
	}

	memEmitted, brEmitted := 0, 0
	for _, s := range body {
		switch {
		case s.op.IsMem():
			useMiss := memEmitted < missSlots
			memEmitted++
			ptr := 6
			if useMiss {
				ptr = 7
			}
			if s.op == LD {
				a.Ld(5, ptr, 0)
			} else {
				a.St(ptr, 0, 3)
			}
			if useMiss {
				a.Emit(Instr{Op: ADD, Rd: 7, Rs1: 7, Rs2: 10}) // advance by a line
			}
		case s.op.IsBranch():
			random := brEmitted < randomBranches
			brEmitted++
			if s.op == JMP {
				// A taken jump to the next instruction.
				a.Emit(Instr{Op: JMP, Imm: 0})
				continue
			}
			if random {
				// LCG step then branch on bit 0: ~50% taken.
				a.Emit(Instr{Op: MUL, Rd: 8, Rs1: 8, Rs2: 13}) // keep state op cheap
				a.Addi(8, 8, 12345)
				a.Emit(Instr{Op: AND, Rd: 9, Rs1: 8, Rs2: 13})
				a.Emit(Instr{Op: s.op, Rs1: 9, Rs2: 12, Imm: 0})
			} else {
				// Never-taken compare of distinct constants.
				if s.op == BEQ {
					a.Emit(Instr{Op: BEQ, Rs1: 13, Rs2: 12, Imm: 0})
				} else {
					a.Emit(Instr{Op: BNE, Rs1: 12, Rs2: 12, Imm: 0})
				}
			}
		default:
			switch s.op {
			case NOP:
				a.Emit(Instr{Op: NOP})
			case LDI:
				a.Ldi(5, int64(rng.Intn(128)))
			case ADDI:
				a.Addi(3, 3, int64(rng.Intn(8)))
			case MUL:
				// Keep products bounded: multiply by one.
				a.Alu(MUL, 5, 3, 13)
			case SHL, SHR:
				a.Alu(s.op, 4, 4, 13)
			default:
				a.Alu(s.op, 3, 3, 4)
			}
		}
	}
	// Reset the miss pointer periodically to stay in memory bounds.
	a.Emit(Instr{Op: AND, Rd: 7, Rs1: 7, Rs2: 11})
	a.Addi(1, 1, 1)
	a.Branch(BNE, 1, 2, "loop")
	a.Halt()

	prog, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	// Patch: r11 mask for the miss pointer, inserted as an extra LDI at
	// the top (register plan documented above). Easier: prepend.
	patched := append(Program{{Op: LDI, Rd: 11, Imm: 0x3FFF}}, prog...)
	// Prepending shifts all absolute positions equally; relative branch
	// displacements are unaffected.
	if err := patched.Validate(); err != nil {
		return nil, err
	}
	return patched, nil
}

// SynthesisReport compares a long reference run against its synthesized
// surrogate.
type SynthesisReport struct {
	OriginalInstructions  int64
	SyntheticInstructions int64
	LengthRatio           float64
	OriginalEPI           float64 // energy per instruction (ground truth)
	SyntheticEPI          float64
	EPIError              float64
}

// RunProfileSynthesis executes the full §II-A flow: architectural
// simulation of the reference program, profile extraction, synthesis of
// a short surrogate, and reference-grade energy evaluation of both.
func RunProfileSynthesis(ref Program, refSetup func(*Machine), cfg MachineConfig, ep EnergyParams, bodyLen, iterations int, rng *rand.Rand) (*SynthesisReport, error) {
	m1 := NewMachine(cfg)
	if refSetup != nil {
		refSetup(m1)
	}
	st1, tr1, err := m1.Run(ref, true)
	if err != nil {
		return nil, err
	}
	pf := ExtractProfile(st1)
	surrogate, err := SynthesizeProgram(pf, bodyLen, iterations, rng)
	if err != nil {
		return nil, err
	}
	m2 := NewMachine(cfg)
	st2, tr2, err := m2.Run(surrogate, true)
	if err != nil {
		return nil, err
	}
	e1 := MeasureEnergy(tr1, ep) / float64(st1.Instructions)
	e2 := MeasureEnergy(tr2, ep) / float64(st2.Instructions)
	rep := &SynthesisReport{
		OriginalInstructions:  st1.Instructions,
		SyntheticInstructions: st2.Instructions,
		OriginalEPI:           e1,
		SyntheticEPI:          e2,
	}
	if st2.Instructions > 0 {
		rep.LengthRatio = float64(st1.Instructions) / float64(st2.Instructions)
	}
	if e1 > 0 {
		rep.EPIError = abs(e1-e2) / e1
	}
	return rep, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
