package isa

import (
	"hlpower/internal/memo"
)

// hashMachineConfig writes every MachineConfig field that changes a
// characterization or simulation outcome.
func hashMachineConfig(e *memo.Enc, cfg MachineConfig) {
	e.String("isa/machine-config/v1")
	e.Int(cfg.ICache.Lines)
	e.Int(cfg.ICache.LineSize)
	e.Int(cfg.DCache.Lines)
	e.Int(cfg.DCache.LineSize)
	e.Int(cfg.ICacheMissPenalty)
	e.Int(cfg.DCacheMissPenalty)
	e.Int(cfg.BranchMissPenalty)
	e.Int(cfg.LoadUsePenalty)
	e.Int(cfg.MemSize)
	e.Int64(cfg.MaxInstructions)
}

// hashEnergyParams writes the full ground-truth cost table.
func hashEnergyParams(e *memo.Enc, p EnergyParams) {
	e.String("isa/energy-params/v1")
	for _, b := range p.Base {
		e.Float64(b)
	}
	e.Float64(p.StateFactor)
	e.Float64(p.DataFactor)
	e.Float64(p.StallEnergy)
	e.Float64(p.IMissEnergy)
	e.Float64(p.DMissEnergy)
	e.Float64(p.BMissEnergy)
}

// CharacterizeTiwariCached is CharacterizeTiwari behind a
// content-addressed cache: the characterization — hundreds of
// straightline and alternating-pair machine runs — is keyed on the
// machine configuration and the energy parameter table, so repeated
// model builds for the same simulated core are answered in O(hash) and
// concurrent builds collapse onto one. The returned model is the shared
// cached instance and must be treated as read-only (every production
// caller only invokes Predict, which does not mutate).
//
// With a nil cache it degenerates to CharacterizeTiwari.
func CharacterizeTiwariCached(c *memo.Cache, cfg MachineConfig, p EnergyParams) (*TiwariModel, error) {
	if c == nil {
		return CharacterizeTiwari(cfg, p)
	}
	e := memo.NewEnc()
	e.String("isa/tiwari/v1")
	hashMachineConfig(e, cfg)
	hashEnergyParams(e, p)
	v, _, err := c.Do(e.Key(), func() (any, int64, bool, error) {
		m, err := CharacterizeTiwari(cfg, p)
		if err != nil {
			return nil, 0, false, err
		}
		// Base table + state map entries + other-effect scalars.
		size := int64(NumOps)*8 + int64(len(m.State))*32 + 64
		return m, size, true, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*TiwariModel), nil
}
