// Package hlerr defines the structured error vocabulary of the
// estimation core. Malformed user-reachable inputs are reported as
// *InputError values; deep builders without error returns (netlist and
// BDD construction, gate evaluation) signal them through typed panics
// that the public entry points convert back into ordinary errors with
// Recover/RecoverAll. The package is a leaf: everything above it —
// logic, bdd, sim, fsm, the hlpower facade — shares this one channel,
// so a malformed netlist can never take a process down.
package hlerr

import (
	"errors"
	"fmt"
)

// InputError describes user-provided input the library rejected:
// mismatched widths, out-of-range references, malformed tables. It is
// re-exported by the root hlpower package.
type InputError struct {
	Op  string // the operation that rejected the input, e.g. "logic.AddG"
	Err error
}

// Error formats the error as "op: detail".
func (e *InputError) Error() string {
	if e.Op == "" {
		return e.Err.Error()
	}
	return e.Op + ": " + e.Err.Error()
}

// Unwrap exposes the underlying cause.
func (e *InputError) Unwrap() error { return e.Err }

// Errorf builds an *InputError with a formatted detail message.
func Errorf(op, format string, args ...any) *InputError {
	return &InputError{Op: op, Err: fmt.Errorf(format, args...)}
}

// failure is the typed panic wrapper: only panics carrying a failure
// are converted to errors by Recover; anything else (a genuine bug)
// keeps propagating.
type failure struct{ err error }

// Throw panics with err wrapped so Recover will catch it. Use it from
// builders whose signatures cannot return errors.
func Throw(err error) { panic(failure{err}) }

// Throwf is Throw(Errorf(op, format, args...)).
func Throwf(op, format string, args ...any) { Throw(Errorf(op, format, args...)) }

// Recover converts a Throw-originated panic into *errp. Deploy it with
// defer at error-returning entry points above panic-based builders:
//
//	func Build(...) (r Result, err error) {
//		defer hlerr.Recover(&err)
//		...
//	}
//
// Panics that did not come from Throw are re-raised.
func Recover(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if f, ok := r.(failure); ok {
		if *errp == nil {
			*errp = f.err
		}
		return
	}
	panic(r)
}

// RecoverAll is the public-API backstop: it converts any panic —
// typed or not — into an error, so no malformed input can crash a
// caller of the hlpower facade. Internal code should prefer Recover,
// which lets real bugs surface.
func RecoverAll(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if *errp != nil {
		return
	}
	*errp = FromPanic(r)
}

// FromPanic converts a recovered panic value into an error, unwrapping
// Throw-originated typed panics to their underlying error. It exists
// for layers that capture a panic once and deliver it to multiple
// waiters (the memoization singleflight group) rather than rethrowing
// it on one goroutine.
func FromPanic(r any) error {
	switch v := r.(type) {
	case failure:
		return v.err
	case error:
		return fmt.Errorf("hlpower: internal panic: %w", v)
	default:
		return fmt.Errorf("hlpower: internal panic: %v", v)
	}
}

// IsInput reports whether err is (or wraps) an *InputError.
func IsInput(err error) bool {
	var ie *InputError
	return errors.As(err, &ie)
}
