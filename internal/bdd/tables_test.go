package bdd

import (
	"math/rand"
	"testing"
)

// randTT returns a random truth table over n variables.
func randTT(rng *rand.Rand, n int) []bool {
	tt := make([]bool, 1<<uint(n))
	for i := range tt {
		tt[i] = rng.Intn(2) == 1
	}
	return tt
}

// TestTableStatsInvariant: on both manager tables, every lookup is
// exactly one hit or one miss, and the entry count matches what the
// misses interned (for the unique table, one node per miss).
func TestTableStatsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, nvars := range []int{4, 8, 11} {
		m := New(nvars)
		root, err := m.BuildTT(randTT(rng, nvars), nvars)
		if err != nil {
			t.Fatal(err)
		}
		// Drive the ITE table too.
		if _, err := m.Apply(func() Node {
			return m.Xor(root, m.And(m.Var(0), m.Var(nvars-1)))
		}); err != nil {
			t.Fatal(err)
		}
		st := m.Stats()
		for _, tc := range []struct {
			name string
			ts   TableStats
		}{{"unique", st.Unique}, {"ite", st.ITE}} {
			if tc.ts.Lookups == 0 {
				t.Fatalf("%s: no lookups recorded", tc.name)
			}
			if tc.ts.Hits+tc.ts.Misses != tc.ts.Lookups {
				t.Fatalf("%s: hits %d + misses %d != lookups %d",
					tc.name, tc.ts.Hits, tc.ts.Misses, tc.ts.Lookups)
			}
			if tc.ts.Entries > tc.ts.Cap {
				t.Fatalf("%s: entries %d exceed cap %d", tc.name, tc.ts.Entries, tc.ts.Cap)
			}
		}
		// Every unique-table miss interned exactly one node (beyond the
		// two terminals).
		if got := int64(m.Size() - 2); got != st.Unique.Misses {
			t.Fatalf("unique misses %d but %d interned nodes", st.Unique.Misses, got)
		}
	}
}

// TestRehashedTablesSameBDDs: the open-addressing tables are a pure
// representation change — managers with different initial table sizes
// (hence different hash layouts and growth histories) must build
// structurally identical BDDs: same node counts, same SizeEstimate,
// same signature probabilities, same evaluations.
func TestRehashedTablesSameBDDs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const nvars = 10
	tt := randTT(rng, nvars)

	p := make([]float64, nvars)
	for i := range p {
		p[i] = rng.Float64()
	}

	build := func(m *Manager) (Node, int, float64) {
		root, err := m.BuildTT(tt, nvars)
		if err != nil {
			t.Fatal(err)
		}
		return root, m.NodeCount(root), m.Probability(root, p)
	}

	small := New(nvars)
	rootS, countS, probS := build(small)
	big := NewSized(nvars, 1<<16)
	rootB, countB, probB := build(big)

	if countS != countB {
		t.Fatalf("node counts differ across table sizes: %d vs %d", countS, countB)
	}
	if probS != probB {
		t.Fatalf("signature probabilities differ: %v vs %v", probS, probB)
	}
	// Canonicity within each manager: same function, same root.
	if again, _ := small.BuildTT(tt, nvars); again != rootS {
		t.Fatalf("rebuild in same manager returned different root")
	}
	if again, _ := big.BuildTT(tt, nvars); again != rootB {
		t.Fatalf("rebuild in sized manager returned different root")
	}
	// Pointwise agreement on a sample of assignments.
	for k := 0; k < 200; k++ {
		assign := make([]bool, nvars)
		idx := 0
		for i := range assign {
			assign[i] = rng.Intn(2) == 1
			if assign[i] {
				idx |= 1 << uint(i)
			}
		}
		want := tt[idx]
		if small.Eval(rootS, assign) != want || big.Eval(rootB, assign) != want {
			t.Fatalf("evaluation disagrees with truth table at %v", assign)
		}
	}

	// SizeEstimate goes through its own manager; it must agree with the
	// exact builds above.
	nodes, degraded, err := SizeEstimate(nil, tt, nvars)
	if err != nil || degraded {
		t.Fatalf("SizeEstimate: nodes=%d degraded=%v err=%v", nodes, degraded, err)
	}
	if nodes != countS {
		t.Fatalf("SizeEstimate %d != NodeCount %d", nodes, countS)
	}
}

// TestNewSizedHint: a size hint preallocates capacity and changes no
// observable behavior beyond that.
func TestNewSizedHint(t *testing.T) {
	m := NewSized(6, 10_000)
	st := m.Stats()
	if st.Unique.Cap < 10_000 || st.ITE.Cap < 10_000 {
		t.Fatalf("hinted caps too small: %+v", st)
	}
	x := m.Var(2)
	if !m.Eval(x, []bool{false, false, true, false, false, false}) {
		t.Fatal("Var(2) should evaluate true when bit 2 set")
	}
	if m.Stats().Unique.Cap != st.Unique.Cap {
		t.Fatal("tiny build should not grow a hinted table")
	}
}
