package bdd

import (
	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
)

// Variable reordering. This manager hash-conses nodes without garbage
// collection, so reordering is implemented by rebuilding the functions
// under a candidate order and measuring the shared node count — the
// robust (if not the fastest) formulation. Greedy sifting over adjacent
// transpositions captures the classic wins (e.g. interleaving the
// operands of a comparator collapses an exponential BDD to linear).

// Builder constructs the root functions in a fresh manager under a
// variable placement: level[i] is the manager level assigned to original
// variable i (use m.Var(level[i]) wherever variable i is meant).
type Builder func(m *Manager, level []int) []Node

// OrderSize rebuilds under the given order (order[k] = original variable
// placed at level k) and returns the shared node count of the roots.
func OrderSize(nvars int, build Builder, order []int) int {
	level := make([]int, nvars)
	for pos, v := range order {
		level[v] = pos
	}
	m := New(nvars)
	roots := build(m, level)
	return m.SharedNodeCount(roots)
}

// ReorderGreedy hill-climbs over adjacent transpositions of the
// identity order for at most the given number of passes, returning the
// best order found and its shared node count.
func ReorderGreedy(nvars int, build Builder, passes int) ([]int, int) {
	order := make([]int, nvars)
	for i := range order {
		order[i] = i
	}
	best := OrderSize(nvars, build, order)
	if passes <= 0 {
		passes = 3
	}
	for p := 0; p < passes; p++ {
		improved := false
		for i := 0; i+1 < nvars; i++ {
			order[i], order[i+1] = order[i+1], order[i]
			if size := OrderSize(nvars, build, order); size < best {
				best = size
				improved = true
			} else {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
		if !improved {
			break
		}
	}
	return order, best
}

// Sift moves each variable in turn to its locally best position
// (a rebuild-based rendition of Rudell's sifting), returning the best
// order and node count. More thorough than ReorderGreedy, more rebuilds.
func Sift(nvars int, build Builder) ([]int, int) {
	order := make([]int, nvars)
	for i := range order {
		order[i] = i
	}
	best := OrderSize(nvars, build, order)
	for v := 0; v < nvars; v++ {
		// Current position of variable v.
		pos := 0
		for i, ov := range order {
			if ov == v {
				pos = i
			}
		}
		bestPos := pos
		// Try every position, tracking the best.
		cur := append([]int{}, order...)
		for target := 0; target < nvars; target++ {
			cand := moveTo(cur, pos, target)
			if size := OrderSize(nvars, build, cand); size < best {
				best = size
				bestPos = target
			}
		}
		order = moveTo(order, pos, bestPos)
	}
	return order, best
}

// OrderSizeBudget is OrderSize with the rebuild governed by a budget:
// node allocation and ITE steps charge b, and exhaustion comes back as
// an error matching budget.ErrExceeded.
func OrderSizeBudget(b *budget.Budget, nvars int, build Builder, order []int) (size int, err error) {
	defer hlerr.Recover(&err)
	level := make([]int, nvars)
	for pos, v := range order {
		level[v] = pos
	}
	m := New(nvars)
	m.SetBudget(b)
	roots := build(m, level)
	return m.SharedNodeCount(roots), nil
}

// ReorderGreedyBudget is ReorderGreedy under a budget. When the budget
// trips mid-search it returns the best order and size reached so far
// alongside the error, so the caller can use the partial answer as a
// degraded result. If even the initial rebuild is cut off, size is 0.
func ReorderGreedyBudget(b *budget.Budget, nvars int, build Builder, passes int) ([]int, int, error) {
	order := make([]int, nvars)
	for i := range order {
		order[i] = i
	}
	best, err := OrderSizeBudget(b, nvars, build, order)
	if err != nil {
		return order, 0, err
	}
	if passes <= 0 {
		passes = 3
	}
	for p := 0; p < passes; p++ {
		improved := false
		for i := 0; i+1 < nvars; i++ {
			order[i], order[i+1] = order[i+1], order[i]
			size, err := OrderSizeBudget(b, nvars, build, order)
			if err != nil {
				order[i], order[i+1] = order[i+1], order[i]
				return order, best, err
			}
			if size < best {
				best = size
				improved = true
			} else {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
		if !improved {
			break
		}
	}
	return order, best, nil
}

// SiftBudget is Sift under a budget, with the same partial-result
// contract as ReorderGreedyBudget.
func SiftBudget(b *budget.Budget, nvars int, build Builder) ([]int, int, error) {
	order := make([]int, nvars)
	for i := range order {
		order[i] = i
	}
	best, err := OrderSizeBudget(b, nvars, build, order)
	if err != nil {
		return order, 0, err
	}
	for v := 0; v < nvars; v++ {
		pos := 0
		for i, ov := range order {
			if ov == v {
				pos = i
			}
		}
		bestPos := pos
		cur := append([]int{}, order...)
		for target := 0; target < nvars; target++ {
			cand := moveTo(cur, pos, target)
			size, err := OrderSizeBudget(b, nvars, build, cand)
			if err != nil {
				order = moveTo(order, pos, bestPos)
				return order, best, err
			}
			if size < best {
				best = size
				bestPos = target
			}
		}
		order = moveTo(order, pos, bestPos)
	}
	return order, best, nil
}

// moveTo returns a copy of order with the element at from moved to
// position to.
func moveTo(order []int, from, to int) []int {
	out := make([]int, 0, len(order))
	v := order[from]
	for i, ov := range order {
		if i == from {
			continue
		}
		out = append(out, ov)
	}
	if to > len(out) {
		to = len(out)
	}
	out = append(out[:to], append([]int{v}, out[to:]...)...)
	return out
}
