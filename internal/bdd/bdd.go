// Package bdd implements reduced ordered binary decision diagrams
// (Bryant, IEEE ToC 1986), the symbolic substrate the paper's control-
// logic synthesis section (§III-H) builds on, and the node-count input to
// the Ferrandi total-capacitance estimate (§II-B1). Nodes are hash-consed
// in a manager; all operations go through ITE with a computed table.
package bdd

import (
	"errors"
	"math"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
)

// Node is a reference to a BDD node inside a Manager. The zero Node is
// the constant false; use Manager methods to build anything else.
type Node int32

// Terminal node references.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level  int32 // variable level; terminals use math.MaxInt32
	lo, hi Node
}

const terminalLevel = math.MaxInt32

// Manager owns the node store and hash tables for one BDD universe with
// a fixed variable order (level i = i-th variable in the order). The
// unique and ITE computed tables are open-addressing tables with an
// integer-mix hash (see tables.go); Stats reports their traffic.
type Manager struct {
	nodes    []nodeData
	unique   *uniqueTable
	iteCache *iteTable
	nvars    int
	budget   *budget.Budget
}

// SetBudget governs all subsequent operations on the manager: node
// allocation charges the budget's node counter and every ITE cache
// miss charges a step. When the budget trips, the in-flight operation
// reports a typed *budget.Exceeded through the panic channel that
// Apply/BuildTT (or any hlerr.Recover boundary) converts back into an
// error. A nil budget removes governance.
func (m *Manager) SetBudget(b *budget.Budget) { m.budget = b }

// Apply runs a BDD-building closure under the manager's budget and
// input checking, converting budget exhaustion and malformed-input
// panics into errors — the error-returning entry point for arbitrary
// operation sequences:
//
//	f, err := m.Apply(func() bdd.Node { return m.And(x, m.Not(y)) })
func (m *Manager) Apply(fn func() Node) (n Node, err error) {
	defer hlerr.Recover(&err)
	return fn(), nil
}

// New returns a manager with nvars variables, ordered by index.
func New(nvars int) *Manager { return NewSized(nvars, 0) }

// NewSized returns a manager whose unique and ITE tables are
// preallocated for roughly sizeHint nodes, skipping the incremental
// growth steps when the final size is known (or well estimated) up
// front. A nonpositive hint gives the small default tables.
func NewSized(nvars, sizeHint int) *Manager {
	m := &Manager{
		unique:   newUniqueTable(sizeHint),
		iteCache: newITETable(sizeHint),
		nvars:    nvars,
	}
	// Index 0 = False, 1 = True.
	m.nodes = append(m.nodes,
		nodeData{level: terminalLevel},
		nodeData{level: terminalLevel})
	return m
}

// Stats returns the manager's cumulative unique-table and ITE
// computed-table statistics (lookups, hits, misses, occupancy).
func (m *Manager) Stats() Stats {
	return Stats{Unique: m.unique.stats(), ITE: m.iteCache.stats()}
}

// NumVars returns the number of variables in the manager.
func (m *Manager) NumVars() int { return m.nvars }

// Size returns the total number of live nodes in the manager (including
// the two terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Var returns the BDD for variable i. An out-of-range index reports a
// typed input error via the panic channel (see Apply).
func (m *Manager) Var(i int) Node {
	if i < 0 || i >= m.nvars {
		hlerr.Throwf("bdd.Var", "variable %d out of range [0,%d)", i, m.nvars)
	}
	return m.mk(int32(i), False, True)
}

// NVar returns the BDD for the complement of variable i.
func (m *Manager) NVar(i int) Node {
	if i < 0 || i >= m.nvars {
		hlerr.Throwf("bdd.NVar", "variable %d out of range [0,%d)", i, m.nvars)
	}
	return m.mk(int32(i), True, False)
}

func (m *Manager) level(n Node) int32 { return m.nodes[n].level }

// mk returns the canonical node (level, lo, hi), applying the reduction
// rule lo==hi.
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	n, idx := m.unique.lookup(level, lo, hi)
	if n != 0 {
		return n
	}
	// idx stays valid: nothing below touches the unique table before
	// insert (CheckNodes can only panic, which abandons the slot).
	m.budget.CheckNodes(1)
	n = Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: level, lo: lo, hi: hi})
	m.unique.insert(idx, level, lo, hi, n)
	return n
}

// ITE computes if-then-else(f, g, h) = f·g + f'·h.
func (m *Manager) ITE(f, g, h Node) Node {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if r, ok := m.iteCache.lookup(f, g, h); ok {
		return r
	}
	m.budget.Check(1)
	// Top variable among f, g, h.
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.iteCache.insert(f, g, h, r)
	return r
}

func (m *Manager) cofactors(n Node, level int32) (lo, hi Node) {
	d := m.nodes[n]
	if d.level != level {
		return n, n
	}
	return d.lo, d.hi
}

// Not returns the complement of f.
func (m *Manager) Not(f Node) Node { return m.ITE(f, False, True) }

// And returns the conjunction of f and g.
func (m *Manager) And(f, g Node) Node { return m.ITE(f, g, False) }

// Or returns the disjunction of f and g.
func (m *Manager) Or(f, g Node) Node { return m.ITE(f, True, g) }

// Xor returns the exclusive-or of f and g.
func (m *Manager) Xor(f, g Node) Node { return m.ITE(f, m.Not(g), g) }

// Xnor returns the complement of Xor(f, g).
func (m *Manager) Xnor(f, g Node) Node { return m.ITE(f, g, m.Not(g)) }

// Implies returns f' + g.
func (m *Manager) Implies(f, g Node) Node { return m.ITE(f, g, True) }

// AndN folds And over its arguments (True for none).
func (m *Manager) AndN(fs ...Node) Node {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN folds Or over its arguments (False for none).
func (m *Manager) OrN(fs ...Node) Node {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// Restrict returns f with variable i fixed to value.
func (m *Manager) Restrict(f Node, i int, value bool) Node {
	cache := make(map[Node]Node)
	level := int32(i)
	var rec func(Node) Node
	rec = func(n Node) Node {
		d := m.nodes[n]
		if d.level > level {
			return n
		}
		if r, ok := cache[n]; ok {
			return r
		}
		var r Node
		if d.level == level {
			if value {
				r = d.hi
			} else {
				r = d.lo
			}
		} else {
			r = m.mk(d.level, rec(d.lo), rec(d.hi))
		}
		cache[n] = r
		return r
	}
	return rec(f)
}

// Exists existentially quantifies variable i out of f.
func (m *Manager) Exists(f Node, i int) Node {
	return m.Or(m.Restrict(f, i, false), m.Restrict(f, i, true))
}

// Forall universally quantifies variable i out of f.
func (m *Manager) Forall(f Node, i int) Node {
	return m.And(m.Restrict(f, i, false), m.Restrict(f, i, true))
}

// ExistsSet existentially quantifies every variable in vars out of f.
func (m *Manager) ExistsSet(f Node, vars []int) Node {
	for _, v := range vars {
		f = m.Exists(f, v)
	}
	return f
}

// Eval evaluates f under the given assignment (len == NumVars).
func (m *Manager) Eval(f Node, assignment []bool) bool {
	for f != True && f != False {
		d := m.nodes[f]
		if assignment[d.level] {
			f = d.hi
		} else {
			f = d.lo
		}
	}
	return f == True
}

// Decompose returns the top variable index and the (lo, hi) cofactor
// children of an internal node. Terminals are a typed input error
// reported through the panic channel (see Apply).
func (m *Manager) Decompose(n Node) (variable int, lo, hi Node) {
	if n == True || n == False {
		hlerr.Throwf("bdd.Decompose", "called on terminal node")
	}
	d := m.nodes[n]
	return int(d.level), d.lo, d.hi
}

// NodeCount returns the number of distinct internal (non-terminal) nodes
// reachable from f — the N of the Ferrandi capacitance model, where each
// node is one two-to-one multiplexor.
func (m *Manager) NodeCount(f Node) int {
	seen := make(map[Node]bool)
	var rec func(Node)
	rec = func(n Node) {
		if n == True || n == False || seen[n] {
			return
		}
		seen[n] = true
		rec(m.nodes[n].lo)
		rec(m.nodes[n].hi)
	}
	rec(f)
	return len(seen)
}

// SharedNodeCount returns the number of distinct internal nodes reachable
// from any of the given roots (multi-output circuit size).
func (m *Manager) SharedNodeCount(roots []Node) int {
	seen := make(map[Node]bool)
	var rec func(Node)
	rec = func(n Node) {
		if n == True || n == False || seen[n] {
			return
		}
		seen[n] = true
		rec(m.nodes[n].lo)
		rec(m.nodes[n].hi)
	}
	for _, r := range roots {
		rec(r)
	}
	return len(seen)
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables. It is the uniform-input probability of f scaled by
// 2^NumVars, which handles skipped levels uniformly.
func (m *Manager) SatCount(f Node) float64 {
	p := make([]float64, m.nvars)
	for i := range p {
		p[i] = 0.5
	}
	return m.Probability(f, p) * math.Pow(2, float64(m.nvars))
}

// Probability returns Pr[f = 1] when each variable i is independently 1
// with probability p[i]. This is the signal-probability computation used
// throughout the entropy and encoding models.
func (m *Manager) Probability(f Node, p []float64) float64 {
	cache := make(map[Node]float64)
	var rec func(Node) float64
	rec = func(n Node) float64 {
		if n == False {
			return 0
		}
		if n == True {
			return 1
		}
		if v, ok := cache[n]; ok {
			return v
		}
		d := m.nodes[n]
		pi := p[d.level]
		v := (1-pi)*rec(d.lo) + pi*rec(d.hi)
		cache[n] = v
		return v
	}
	return rec(f)
}

// FromTruthTable builds the BDD of an n-input function given its truth
// table tt, where bit j of the function is tt[j] for input assignment j
// (variable i is bit i of j). Length mismatches and budget exhaustion
// report through the panic channel; BuildTT is the error-returning
// form.
func (m *Manager) FromTruthTable(tt []bool, n int) Node {
	if n < 0 || n > 30 || len(tt) != 1<<uint(n) {
		hlerr.Throwf("bdd.FromTruthTable", "truth table length %d does not match %d variables", len(tt), n)
	}
	var rec func(level, idx int) Node
	rec = func(level, idx int) Node {
		if level == n {
			if tt[idx] {
				return True
			}
			return False
		}
		m.budget.Check(1)
		// Variable `level` is bit `level` of the assignment index.
		stride := 1 << uint(level)
		return m.mk(int32(level), rec(level+1, idx), rec(level+1, idx+stride))
	}
	return rec(0, 0)
}

// BuildTT is FromTruthTable with error reporting: malformed tables and
// budget exhaustion come back as errors (budget violations match
// budget.ErrExceeded) instead of unwinding the caller.
func (m *Manager) BuildTT(tt []bool, n int) (node Node, err error) {
	defer hlerr.Recover(&err)
	return m.FromTruthTable(tt, n), nil
}

// SizeEstimate returns the ROBDD node count of the function under the
// given budget, degrading gracefully: if the exact build exhausts the
// budget, it falls back to a cheap sampled estimate of the per-level
// widths and reports degraded=true. Only malformed input is an error.
func SizeEstimate(b *budget.Budget, tt []bool, n int) (nodes int, degraded bool, err error) {
	m := New(n)
	m.SetBudget(b)
	root, err := m.BuildTT(tt, n)
	if err == nil {
		return m.NodeCount(root), false, nil
	}
	if !errors.Is(err, budget.ErrExceeded) {
		return 0, false, err
	}
	return sampledSize(tt, n), true, nil
}

// SampledSize is the sampled (degraded) ROBDD size estimate on its own:
// callers that manage their own Manager and budget (e.g. powerd's BDD
// handler) use it to degrade after an exact build was cut off.
func SampledSize(tt []bool, n int) int { return sampledSize(tt, n) }

// sampledSize estimates the ROBDD size of tt by sampling: the width of
// level i is the number of distinct cofactor columns tt[p + k·2^i]
// over prefixes p. It hashes a bounded number of probe points per
// column for a bounded number of prefixes per level, so its cost is
// O(n · 64 · 128) regardless of table size — cheap enough to run
// unbudgeted after the exact build has already been cut off.
func sampledSize(tt []bool, n int) int {
	const (
		maxPrefixes = 64
		maxProbes   = 128
	)
	total := 2 // terminals
	for level := 0; level < n; level++ {
		prefixes := 1 << uint(level)
		sampleP := prefixes
		if sampleP > maxPrefixes {
			sampleP = maxPrefixes
		}
		suffix := 1 << uint(n-level)
		probes := suffix
		if probes > maxProbes {
			probes = maxProbes
		}
		// The probe offsets must be shared by every prefix at this level
		// so that equal columns hash equal.
		rng := splitmix(uint64(level)<<8 | 0x5d)
		offsets := make([]int, probes)
		for k := range offsets {
			if suffix <= maxProbes {
				offsets[k] = k
			} else {
				offsets[k] = int(rng() % uint64(suffix))
			}
		}
		seen := make(map[uint64]struct{}, sampleP)
		for s := 0; s < sampleP; s++ {
			p := s
			if prefixes > maxPrefixes {
				p = int(rng() % uint64(prefixes))
			}
			h := uint64(1469598103934665603)
			for _, k := range offsets {
				h ^= uint64(boolBit(tt[p+k<<uint(level)]))
				h *= 1099511628211
			}
			seen[h] = struct{}{}
		}
		est := len(seen)
		if est == sampleP && prefixes > sampleP {
			// Every sampled column was distinct: assume the level is
			// near its maximum width.
			est = prefixes
		}
		total += est
	}
	return total
}

func boolBit(b bool) int {
	if b {
		return 3
	}
	return 5
}

// splitmix returns a splitmix64 generator — deterministic sampling
// without math/rand.
func splitmix(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// AndExists computes ∃vars.(f ∧ g) without materializing the full
// conjunction — the relational-product step at the heart of symbolic
// image computation (§III-H's "avoid explicit enumeration").
func (m *Manager) AndExists(f, g Node, vars []int) Node {
	inSet := make(map[int32]bool, len(vars))
	for _, v := range vars {
		inSet[int32(v)] = true
	}
	type key struct{ f, g Node }
	cache := make(map[key]Node)
	var rec func(f, g Node) Node
	rec = func(f, g Node) Node {
		if f == False || g == False {
			return False
		}
		if f == True && g == True {
			return True
		}
		k := key{f, g}
		if f > g {
			k = key{g, f}
		}
		if r, ok := cache[k]; ok {
			return r
		}
		top := m.level(f)
		if l := m.level(g); l < top {
			top = l
		}
		f0, f1 := m.cofactors(f, top)
		g0, g1 := m.cofactors(g, top)
		var r Node
		if inSet[top] {
			lo := rec(f0, g0)
			if lo == True {
				r = True // short-circuit: ∃ already satisfied
			} else {
				r = m.Or(lo, rec(f1, g1))
			}
		} else {
			r = m.mk(top, rec(f0, g0), rec(f1, g1))
		}
		cache[k] = r
		return r
	}
	return rec(f, g)
}
