// Hash tables specialized for the manager's two hot paths: the unique
// table that hash-conses nodes and the ITE computed table. Both used to
// be Go maps keyed by structs, which pay interface-free but still
// substantial costs — per-key hashing through runtime reflection-ish
// type hashers, bucket chasing, and write-barrier traffic. These are
// exact (never lossy) open-addressing tables with power-of-two
// capacity, linear probing, and a cheap integer-mix hash over the key
// words. Losing a cached ITE result would only cost recompute time, but
// for the deep recursions the reordering heuristics drive, "only" is
// exponential — so entries are never evicted; tables grow at 3/4 load.
package bdd

// mix3 hashes three key words with splitmix64-style finalization — a
// few multiplies and shifts, no memory traffic.
func mix3(a, b, c uint64) uint64 {
	h := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + c*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// TableStats reports cumulative traffic on one manager hash table.
// Hits+Misses always equals Lookups; Entries/Cap describe current
// occupancy.
type TableStats struct {
	Lookups int64 `json:"lookups"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
	Cap     int   `json:"cap"`
}

// Stats bundles the per-table statistics of one manager.
type Stats struct {
	Unique TableStats `json:"unique"`
	ITE    TableStats `json:"ite"`
}

// tableCap rounds a size hint up to the smallest power of two that
// keeps the table under 3/4 load, with a floor small enough that the
// reordering heuristics can rebuild throwaway managers cheaply.
func tableCap(hint int) int {
	c := 16
	for c*3 < hint*4 {
		c <<= 1
	}
	return c
}

// uniqueEntry is one hash-consed node: key (level, lo, hi), value val.
// val == 0 marks an empty slot — node ids 0 and 1 are the terminals and
// are never interned, so every stored value is >= 2.
type uniqueEntry struct {
	level  int32
	lo, hi Node
	val    Node
}

type uniqueTable struct {
	entries []uniqueEntry
	mask    uint64
	n       int
	lookups int64
	hits    int64
}

func newUniqueTable(hint int) *uniqueTable {
	c := tableCap(hint)
	return &uniqueTable{entries: make([]uniqueEntry, c), mask: uint64(c - 1)}
}

// lookup probes for (level, lo, hi). On a hit it returns the interned
// node and -1; on a miss it returns 0 and the slot index where insert
// must place the new node. The index stays valid only while the table
// is untouched — mk's lookup→insert window performs no other table
// operations.
func (t *uniqueTable) lookup(level int32, lo, hi Node) (Node, int) {
	t.lookups++
	i := mix3(uint64(uint32(level)), uint64(lo), uint64(hi)) & t.mask
	for {
		e := &t.entries[i]
		if e.val == 0 {
			return 0, int(i)
		}
		if e.level == level && e.lo == lo && e.hi == hi {
			t.hits++
			return e.val, -1
		}
		i = (i + 1) & t.mask
	}
}

// insert fills the empty slot lookup reported and grows past 3/4 load.
func (t *uniqueTable) insert(idx int, level int32, lo, hi, val Node) {
	t.entries[idx] = uniqueEntry{level: level, lo: lo, hi: hi, val: val}
	t.n++
	if t.n*4 >= len(t.entries)*3 {
		t.grow()
	}
}

func (t *uniqueTable) grow() {
	old := t.entries
	t.entries = make([]uniqueEntry, len(old)*2)
	t.mask = uint64(len(t.entries) - 1)
	for _, e := range old {
		if e.val == 0 {
			continue
		}
		i := mix3(uint64(uint32(e.level)), uint64(e.lo), uint64(e.hi)) & t.mask
		for t.entries[i].val != 0 {
			i = (i + 1) & t.mask
		}
		t.entries[i] = e
	}
}

func (t *uniqueTable) stats() TableStats {
	return TableStats{
		Lookups: t.lookups,
		Hits:    t.hits,
		Misses:  t.lookups - t.hits,
		Entries: t.n,
		Cap:     len(t.entries),
	}
}

// iteEntry caches ITE(f, g, h) = val. f == 0 marks an empty slot: the
// terminal cases return before the cache, so every cached f is an
// internal node (>= 2). val may legitimately be a terminal.
type iteEntry struct {
	f, g, h Node
	val     Node
}

type iteTable struct {
	entries []iteEntry
	mask    uint64
	n       int
	lookups int64
	hits    int64
}

func newITETable(hint int) *iteTable {
	c := tableCap(hint)
	return &iteTable{entries: make([]iteEntry, c), mask: uint64(c - 1)}
}

// lookup probes for (f, g, h): (result, true) on a hit. Unlike the
// unique table it does not hand out a slot index — ITE recurses between
// lookup and insert, and those recursive calls move slots around.
func (t *iteTable) lookup(f, g, h Node) (Node, bool) {
	t.lookups++
	i := mix3(uint64(f), uint64(g), uint64(h)) & t.mask
	for {
		e := &t.entries[i]
		if e.f == 0 {
			return 0, false
		}
		if e.f == f && e.g == g && e.h == h {
			t.hits++
			return e.val, true
		}
		i = (i + 1) & t.mask
	}
}

// insert stores ITE(f, g, h) = val, re-probing from scratch (see
// lookup) and growing past 3/4 load. Keys are never inserted twice:
// ITE only inserts after a miss, and the recursion between miss and
// insert computes strictly smaller subproblems.
func (t *iteTable) insert(f, g, h, val Node) {
	i := mix3(uint64(f), uint64(g), uint64(h)) & t.mask
	for t.entries[i].f != 0 {
		i = (i + 1) & t.mask
	}
	t.entries[i] = iteEntry{f: f, g: g, h: h, val: val}
	t.n++
	if t.n*4 >= len(t.entries)*3 {
		t.grow()
	}
}

func (t *iteTable) grow() {
	old := t.entries
	t.entries = make([]iteEntry, len(old)*2)
	t.mask = uint64(len(t.entries) - 1)
	for _, e := range old {
		if e.f == 0 {
			continue
		}
		i := mix3(uint64(e.f), uint64(e.g), uint64(e.h)) & t.mask
		for t.entries[i].f != 0 {
			i = (i + 1) & t.mask
		}
		t.entries[i] = e
	}
}

func (t *iteTable) stats() TableStats {
	return TableStats{
		Lookups: t.lookups,
		Hits:    t.hits,
		Misses:  t.lookups - t.hits,
		Entries: t.n,
		Cap:     len(t.entries),
	}
}
