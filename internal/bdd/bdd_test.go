package bdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	m := New(2)
	if m.Not(True) != False || m.Not(False) != True {
		t.Error("Not on terminals broken")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Error("And/Or on terminals broken")
	}
}

func TestVarCanonical(t *testing.T) {
	m := New(3)
	if m.Var(0) != m.Var(0) {
		t.Error("Var not hash-consed")
	}
	if m.Var(0) == m.Var(1) {
		t.Error("distinct variables identical")
	}
}

func TestDeMorgan(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	lhs := m.Not(m.And(a, b))
	rhs := m.Or(m.Not(a), m.Not(b))
	if lhs != rhs {
		t.Error("De Morgan violated: canonical forms differ")
	}
}

func TestXorProperties(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	if m.Xor(a, a) != False {
		t.Error("a^a != 0")
	}
	if m.Xor(a, False) != a {
		t.Error("a^0 != a")
	}
	if m.Xor(a, True) != m.Not(a) {
		t.Error("a^1 != a'")
	}
	if m.Xor(a, b) != m.Xor(b, a) {
		t.Error("xor not commutative")
	}
	if m.Xnor(a, b) != m.Not(m.Xor(a, b)) {
		t.Error("xnor != not xor")
	}
}

func TestEvalMatchesConstruction(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), m.And(m.Not(a), c)) // mux(a; c, b)
	for i := 0; i < 8; i++ {
		asg := []bool{i&1 == 1, i&2 == 2, i&4 == 4}
		want := (asg[0] && asg[1]) || (!asg[0] && asg[2])
		if got := m.Eval(f, asg); got != want {
			t.Errorf("Eval(%v) = %v, want %v", asg, got, want)
		}
	}
}

func TestCanonicityRandom(t *testing.T) {
	// Two structurally different constructions of the same function must
	// yield the identical node.
	m := New(4)
	vars := []Node{m.Var(0), m.Var(1), m.Var(2), m.Var(3)}
	a, b, c, d := vars[0], vars[1], vars[2], vars[3]
	f1 := m.Or(m.Or(m.And(a, b), m.And(c, d)), m.And(a, d))
	f2 := m.Or(m.And(a, m.Or(b, d)), m.And(c, d))
	if f1 != f2 {
		t.Error("equivalent functions got different nodes")
	}
}

func TestRestrict(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	if m.Restrict(f, 0, true) != b {
		t.Error("(a·b)|a=1 != b")
	}
	if m.Restrict(f, 0, false) != False {
		t.Error("(a·b)|a=0 != 0")
	}
	if m.Restrict(f, 1, true) != a {
		t.Error("(a·b)|b=1 != a")
	}
}

func TestQuantification(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	if m.Exists(f, 0) != b {
		t.Error("∃a.(a·b) != b")
	}
	if m.Forall(f, 0) != False {
		t.Error("∀a.(a·b) != 0")
	}
	g := m.Or(a, b)
	if m.Forall(g, 0) != b {
		t.Error("∀a.(a+b) != b")
	}
	if m.ExistsSet(f, []int{0, 1}) != True {
		t.Error("∃ab.(a·b) != 1")
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	if got := m.SatCount(m.And(a, b)); got != 2 { // c free
		t.Errorf("SatCount(a·b) = %v, want 2", got)
	}
	if got := m.SatCount(m.Or(a, b)); got != 6 {
		t.Errorf("SatCount(a+b) = %v, want 6", got)
	}
	if got := m.SatCount(True); got != 8 {
		t.Errorf("SatCount(1) = %v, want 8", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Errorf("SatCount(0) = %v, want 0", got)
	}
}

func TestProbability(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	p := m.Probability(f, []float64{0.5, 0.5})
	if math.Abs(p-0.25) > 1e-12 {
		t.Errorf("Pr[ab] = %v, want 0.25", p)
	}
	p = m.Probability(m.Or(a, b), []float64{0.1, 0.2})
	want := 1 - 0.9*0.8
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("Pr[a+b] = %v, want %v", p, want)
	}
}

func TestFromTruthTable(t *testing.T) {
	// Majority of 3.
	n := 3
	tt := make([]bool, 8)
	for i := range tt {
		ones := 0
		for j := 0; j < n; j++ {
			if i>>uint(j)&1 == 1 {
				ones++
			}
		}
		tt[i] = ones >= 2
	}
	m := New(n)
	f := m.FromTruthTable(tt, n)
	for i := 0; i < 8; i++ {
		asg := []bool{i&1 == 1, i&2 == 2, i&4 == 4}
		if m.Eval(f, asg) != tt[i] {
			t.Errorf("truth table mismatch at %d", i)
		}
	}
	if got := m.SatCount(f); got != 4 {
		t.Errorf("SatCount(maj3) = %v, want 4", got)
	}
}

func TestFromTruthTableRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		tt := make([]bool, 1<<uint(n))
		for i := range tt {
			tt[i] = rng.Intn(2) == 1
		}
		m := New(n)
		f := m.FromTruthTable(tt, n)
		for i := range tt {
			asg := make([]bool, n)
			for j := 0; j < n; j++ {
				asg[j] = i>>uint(j)&1 == 1
			}
			if m.Eval(f, asg) != tt[i] {
				t.Fatalf("trial %d: mismatch at input %d", trial, i)
			}
		}
	}
}

func TestNodeCount(t *testing.T) {
	m := New(2)
	if m.NodeCount(True) != 0 || m.NodeCount(False) != 0 {
		t.Error("terminal node count should be 0")
	}
	a, b := m.Var(0), m.Var(1)
	if got := m.NodeCount(a); got != 1 {
		t.Errorf("NodeCount(a) = %d, want 1", got)
	}
	f := m.Xor(a, b)
	if got := m.NodeCount(f); got != 3 {
		t.Errorf("NodeCount(a^b) = %d, want 3", got)
	}
	// a^b contains {root, b, b'}; a is a distinct fourth node.
	if got := m.SharedNodeCount([]Node{a, f}); got != 4 {
		t.Errorf("SharedNodeCount = %d, want 4", got)
	}
	if got := m.SharedNodeCount([]Node{f, f}); got != 3 {
		t.Errorf("SharedNodeCount dup roots = %d, want 3", got)
	}
}

func TestImplies(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	f := m.Implies(m.And(a, b), a)
	if f != True {
		t.Error("ab -> a should be a tautology")
	}
}

func TestITEConsistencyProperty(t *testing.T) {
	// Shannon expansion: f == ITE(x, f|x=1, f|x=0) for random functions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		tt := make([]bool, 1<<uint(n))
		for i := range tt {
			tt[i] = rng.Intn(2) == 1
		}
		m := New(n)
		g := m.FromTruthTable(tt, n)
		v := rng.Intn(n)
		return m.ITE(m.Var(v), m.Restrict(g, v, true), m.Restrict(g, v, false)) == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVarPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range variable")
		}
	}()
	New(2).Var(5)
}

// interleavedAndBuilder builds f = Σ x_i·y_i where the x block occupies
// original variables 0..k-1 and y block k..2k-1: the identity (blocked)
// order is exponential, the interleaved order linear — the canonical
// reordering example.
func interleavedAndBuilder(k int) (int, Builder) {
	n := 2 * k
	return n, func(m *Manager, level []int) []Node {
		f := False
		for i := 0; i < k; i++ {
			f = m.Or(f, m.And(m.Var(level[i]), m.Var(level[k+i])))
		}
		return []Node{f}
	}
}

func TestOrderSizeBlockedVsInterleaved(t *testing.T) {
	k := 6
	n, build := interleavedAndBuilder(k)
	blocked := make([]int, n)
	for i := range blocked {
		blocked[i] = i
	}
	interleaved := make([]int, 0, n)
	for i := 0; i < k; i++ {
		interleaved = append(interleaved, i, k+i)
	}
	sb := OrderSize(n, build, blocked)
	si := OrderSize(n, build, interleaved)
	if si >= sb {
		t.Fatalf("interleaved order (%d nodes) should beat blocked (%d)", si, sb)
	}
	if si > 3*n {
		t.Errorf("interleaved size %d should be linear in n=%d", si, n)
	}
}

func TestSiftFindsGoodOrder(t *testing.T) {
	k := 5
	n, build := interleavedAndBuilder(k)
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	base := OrderSize(n, build, identity)
	_, sifted := Sift(n, build)
	if sifted > base/2 {
		t.Errorf("sifting got %d nodes, want well below identity's %d", sifted, base)
	}
	_, greedy := ReorderGreedy(n, build, 10)
	if greedy > base {
		t.Errorf("greedy reorder %d should never exceed identity %d", greedy, base)
	}
}

func TestMoveTo(t *testing.T) {
	o := []int{0, 1, 2, 3}
	got := moveTo(o, 0, 3)
	want := []int{1, 2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("moveTo = %v, want %v", got, want)
		}
	}
	got = moveTo(o, 2, 0)
	want = []int{2, 0, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("moveTo = %v, want %v", got, want)
		}
	}
}

func TestAndExistsMatchesComposition(t *testing.T) {
	// ∃vars.(f·g) computed relationally must equal And followed by
	// ExistsSet, on random functions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		m := New(n)
		tt1 := make([]bool, 1<<uint(n))
		tt2 := make([]bool, 1<<uint(n))
		for i := range tt1 {
			tt1[i] = rng.Intn(2) == 1
			tt2[i] = rng.Intn(2) == 1
		}
		a := m.FromTruthTable(tt1, n)
		b := m.FromTruthTable(tt2, n)
		var vars []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 1 {
				vars = append(vars, v)
			}
		}
		return m.AndExists(a, b, vars) == m.ExistsSet(m.And(a, b), vars)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
