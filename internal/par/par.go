// Package par runs statistically independent shards of estimation work
// — Monte Carlo vector blocks, candidate estimators, experiment
// configurations — across a bounded worker pool. It is the one place
// the repository spawns goroutines for data parallelism, and it fixes
// the three policies every fan-out must agree on:
//
//   - Budgets: workers never share the caller's *Budget (a Budget is
//     single-goroutine by contract); Do forks per-worker children that
//     split the remaining allowance and Joins their consumption back,
//     so a parallel region costs the parent budget what a serial run
//     would. The first failing shard cancels the rest through the
//     forked context.
//   - Panics: a panicking shard becomes that shard's error via
//     hlerr.RecoverAll — panics cannot cross goroutine boundaries, so
//     the pool converts them exactly as the hlpower facade does.
//   - Determinism: results are delivered in shard-index order (Map) and
//     the winning error is chosen by deterministic scan, never by race
//     arrival order. Callers that merge shard results in index order
//     therefore produce output independent of the worker count.
package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
)

// Workers clamps a worker-count knob: nonpositive means "one worker
// per available CPU" (GOMAXPROCS). Every -j style flag in the cmd
// binaries routes through this, so a clamped or unset value degrades
// to full-machine parallelism instead of zero workers.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Span is a half-open index range [Lo, Hi).
type Span struct{ Lo, Hi int }

// Len returns the number of indices in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Shards splits [0, n) into at most parts contiguous, near-equal,
// non-empty spans in ascending order. Contiguity matters: shard
// results concatenated in span order reproduce the serial iteration
// order, which is what makes deterministic merges possible.
func Shards(n, parts int) []Span {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Span, 0, parts)
	base, rem := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Span{lo, lo + size})
		lo += size
	}
	return out
}

// ErrSkipped marks shards that were never started because an earlier
// shard failed and the pool was winding down.
var ErrSkipped = errors.New("par: shard skipped after earlier failure")

// Task is one shard of work. The budget is the worker's private child
// budget (nil-safe, like every budget); shard is the task index.
type Task func(shard int, b *budget.Budget) error

// Do runs n tasks with at most workers goroutines. With one worker (or
// one task) it degenerates to a plain serial loop over the caller's
// own budget — sticky-budget semantics identical to the pre-parallel
// code paths. With more, each worker receives a forked budget share,
// the first failing shard cancels the remainder, consumption is joined
// back to the parent, and the returned error is chosen
// deterministically: the lowest-index error that is not a cancellation
// artifact, falling back to the first cancellation/skip if nothing
// better explains the failure.
func Do(b *budget.Budget, workers, n int, task Task) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := runTask(b, i, task); err != nil {
				return err
			}
		}
		return nil
	}
	kids, cancel := b.Fork(workers)
	defer cancel()
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wb *budget.Budget) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					errs[i] = ErrSkipped
					continue
				}
				if err := runTask(wb, i, task); err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
				}
			}
		}(kids[w])
	}
	wg.Wait()
	b.Join(kids...)
	return firstError(errs)
}

// Map is Do with ordered results: out[i] is task i's value, so a merge
// that walks the slice reproduces serial iteration order regardless of
// which worker computed which shard. On error the partial results are
// withheld (some shards may have been skipped).
func Map[T any](b *budget.Budget, workers, n int, task func(shard int, b *budget.Budget) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Do(b, workers, n, func(i int, wb *budget.Budget) error {
		v, err := task(i, wb)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runTask executes one shard with the pool's panic policy: anything a
// shard panics with — typed hlerr throws and genuine bugs alike —
// becomes that shard's error, because a panic on a pool goroutine
// would otherwise kill the process.
func runTask(b *budget.Budget, i int, task Task) (err error) {
	defer hlerr.RecoverAll(&err)
	return task(i, b)
}

// firstError picks the error Do reports. Cancellation fallout
// (context.Canceled budget trips in sibling shards, ErrSkipped
// placeholders) is ranked below real failures so the cause, not the
// cleanup, surfaces — and the scan order makes the choice
// deterministic for deterministic workloads.
func firstError(errs []error) error {
	var fallback error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, context.Canceled) || errors.Is(e, ErrSkipped) {
			if fallback == nil {
				fallback = e
			}
			continue
		}
		return e
	}
	return fallback
}
