package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
)

func TestWorkersClamp(t *testing.T) {
	if Workers(0) < 1 || Workers(-7) < 1 {
		t.Fatal("nonpositive worker counts must clamp to at least 1")
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestShards(t *testing.T) {
	cases := []struct{ n, parts, want int }{
		{10, 3, 3}, {10, 1, 1}, {3, 8, 3}, {0, 4, 0}, {7, 7, 7}, {5, 0, 1},
	}
	for _, c := range cases {
		spans := Shards(c.n, c.parts)
		if len(spans) != c.want {
			t.Fatalf("Shards(%d,%d) = %d spans, want %d", c.n, c.parts, len(spans), c.want)
		}
		lo, total := 0, 0
		for _, s := range spans {
			if s.Lo != lo || s.Len() <= 0 {
				t.Fatalf("Shards(%d,%d): span %+v not contiguous/non-empty", c.n, c.parts, s)
			}
			lo = s.Hi
			total += s.Len()
		}
		if c.n > 0 && total != c.n {
			t.Fatalf("Shards(%d,%d) covers %d indices", c.n, c.parts, total)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		out, err := Map(nil, workers, 20, func(i int, _ *budget.Budget) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("w=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestDoPanicBecomesError(t *testing.T) {
	err := Do(nil, 4, 8, func(i int, _ *budget.Budget) error {
		if i == 3 {
			panic("shard bug")
		}
		return nil
	})
	if err == nil || !errorsContains(err, "shard bug") {
		t.Fatalf("panic not captured: %v", err)
	}
	// Typed hlerr throws come back as their original error.
	err = Do(nil, 2, 4, func(i int, _ *budget.Budget) error {
		if i == 1 {
			hlerr.Throwf("par.test", "typed failure")
		}
		return nil
	})
	if !hlerr.IsInput(err) {
		t.Fatalf("typed throw lost its type: %v", err)
	}
}

func TestDoFirstRealErrorWins(t *testing.T) {
	err := Do(nil, 4, 16, func(i int, _ *budget.Budget) error {
		if i == 5 {
			return fmt.Errorf("real failure at %d", i)
		}
		return nil
	})
	if err == nil || errors.Is(err, ErrSkipped) {
		t.Fatalf("cancellation artifact outranked real error: %v", err)
	}
}

func TestDoSerialFastPathUsesParentBudget(t *testing.T) {
	b := budget.New(budget.WithMaxSteps(10))
	var ran int
	err := Do(b, 1, 5, func(i int, wb *budget.Budget) error {
		ran++
		return wb.Step(4)
	})
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("want budget trip, got %v", err)
	}
	if ran != 3 {
		t.Fatalf("sticky serial budget should stop after 3 tasks, ran %d", ran)
	}
	if b.StepsUsed() != 12 {
		t.Fatalf("serial path must charge the parent directly, used %d", b.StepsUsed())
	}
}

func TestDoJoinsConsumptionToParent(t *testing.T) {
	b := budget.New(budget.WithMaxSteps(1_000_000))
	if err := Do(b, 4, 8, func(i int, wb *budget.Budget) error {
		return wb.Step(100)
	}); err != nil {
		t.Fatal(err)
	}
	if got := b.StepsUsed(); got != 800 {
		t.Fatalf("parent charged %d steps, want 800", got)
	}
}

// TestDoFaultInjectionUnwindsCleanly sweeps a deterministic fault
// through the forked budgets and asserts the pool always unwinds to a
// typed error — never a panic, never a hang, and the parent budget is
// still usable afterwards.
func TestDoFaultInjectionUnwindsCleanly(t *testing.T) {
	for fail := int64(1); fail <= 6; fail++ {
		b := budget.New(
			budget.WithFaultPlan(budget.FaultPlan{FailAtCheck: fail}),
			budget.WithCheckInterval(8),
		)
		err := Do(b, 4, 12, func(i int, wb *budget.Budget) error {
			for s := 0; s < 100; s++ {
				wb.Check(1)
			}
			return nil
		})
		var ex *budget.Exceeded
		if !errors.As(err, &ex) {
			t.Fatalf("fail@%d: want *budget.Exceeded, got %v", fail, err)
		}
		if !errors.Is(err, budget.ErrExceeded) {
			t.Fatalf("fail@%d: error does not match ErrExceeded", fail)
		}
	}
}

// TestDoFaultSoakNeverHangs runs a randomized fault soak: whatever
// check point trips, every outcome is either success or a typed error.
func TestDoFaultSoakNeverHangs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		b := budget.New(
			budget.WithFaultPlan(budget.FaultPlan{Prob: 0.2, Seed: seed}),
			budget.WithCheckInterval(4),
		)
		err := Do(b, 3, 9, func(i int, wb *budget.Budget) error {
			for s := 0; s < 64; s++ {
				wb.Check(1)
			}
			return nil
		})
		if err != nil && !errors.Is(err, budget.ErrExceeded) {
			t.Fatalf("seed %d: unexpected error class: %v", seed, err)
		}
	}
}

func TestDoCancelsSiblingsAfterFailure(t *testing.T) {
	var started atomic.Int64
	err := Do(nil, 2, 1000, func(i int, wb *budget.Budget) error {
		started.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		for s := 0; s < 2*budget.DefaultCheckInterval; s++ {
			if err := wb.Step(1); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	if started.Load() == 1000 {
		t.Fatal("no shard was skipped after failure; cancellation is not propagating")
	}
}

func TestDoZeroTasks(t *testing.T) {
	if err := Do(nil, 4, 0, func(int, *budget.Budget) error {
		t.Fatal("task ran")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func errorsContains(err error, s string) bool {
	return err != nil && len(err.Error()) >= len(s) &&
		(err.Error() == s || containsStr(err.Error(), s))
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
