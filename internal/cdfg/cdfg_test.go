package cdfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickCheck wraps testing/quick with a bounded count.
func quickCheck(f func(int64) bool, count int) error {
	return quick.Check(f, &quick.Config{MaxCount: count})
}

func randomInputs(g *Graph, rng *rand.Rand) map[string]int64 {
	in := make(map[string]int64)
	for _, n := range g.Nodes {
		if n.Kind == Input {
			in[n.Name] = int64(rng.Intn(64) - 32)
		}
	}
	return in
}

func TestPoly2Equivalence(t *testing.T) {
	d, h := Poly2Direct(), Poly2Horner()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		in := randomInputs(d, rng)
		a, err := d.OutputValues(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := h.OutputValues(in)
		if err != nil {
			t.Fatal(err)
		}
		if a[0] != b[0] {
			t.Fatalf("poly2 mismatch on %v: %d vs %d", in, a[0], b[0])
		}
	}
}

func TestPoly3Equivalence(t *testing.T) {
	d, h := Poly3Direct(), Poly3Horner()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		in := randomInputs(d, rng)
		a, _ := d.OutputValues(in)
		b, _ := h.OutputValues(in)
		if a[0] != b[0] {
			t.Fatalf("poly3 mismatch on %v", in)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	// 2nd order: the transformation removes a multiplication while the
	// critical path grows by at most one step.
	d, h := Poly2Direct(), Poly2Horner()
	dc, hc := d.OpCounts(), h.OpCounts()
	if dc[Mul] != 3 || dc[Add] != 2 {
		t.Errorf("direct2 ops = %v", dc)
	}
	if hc[Mul] != 2 || hc[Add] != 2 {
		t.Errorf("horner2 ops = %v", hc)
	}
	if d.CriticalPath(nil) != 3 {
		t.Errorf("direct2 CP = %d, want 3", d.CriticalPath(nil))
	}
	if h.CriticalPath(nil) != 4 {
		t.Errorf("horner2 CP = %d, want 4", h.CriticalPath(nil))
	}
}

func TestFig5Shape(t *testing.T) {
	// 3rd order: fewer multiplications but a longer critical path — the
	// paper's "contradictory effects" case.
	d, h := Poly3Direct(), Poly3Horner()
	dc, hc := d.OpCounts(), h.OpCounts()
	if dc[Mul] != 4 || dc[Add] != 3 {
		t.Errorf("direct3 ops = %v", dc)
	}
	if hc[Mul] != 3 || hc[Add] != 3 {
		t.Errorf("horner3 ops = %v", hc)
	}
	dCP, hCP := d.CriticalPath(nil), h.CriticalPath(nil)
	if dCP != 4 {
		t.Errorf("direct3 CP = %d, want 4", dCP)
	}
	if hCP <= dCP {
		t.Errorf("horner3 CP %d should exceed direct3 %d", hCP, dCP)
	}
}

func TestStrengthReduceEquivalence(t *testing.T) {
	coeffs := []int64{5, 3, 12, 1, 9, 6}
	g := FIR(coeffs)
	sr := StrengthReduce(g)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		in := randomInputs(g, rng)
		a, err := g.OutputValues(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sr.OutputValues(in)
		if err != nil {
			t.Fatal(err)
		}
		if a[0] != b[0] {
			t.Fatalf("strength-reduced FIR differs on %v", in)
		}
	}
	// No multiplications remain, and the energy drops sharply.
	if sr.OpCounts()[Mul] != 0 {
		t.Errorf("muls remain after strength reduction: %v", sr.OpCounts())
	}
	if sr.TotalEnergy(nil) >= g.TotalEnergy(nil)/2 {
		t.Errorf("shift-add energy %v not well below multiplier energy %v",
			sr.TotalEnergy(nil), g.TotalEnergy(nil))
	}
}

func TestStrengthReducePreservesVariableMul(t *testing.T) {
	g := New()
	x := g.Input("x")
	y := g.Input("y")
	g.MarkOutput(g.Op(Mul, x, y))
	sr := StrengthReduce(g)
	if sr.OpCounts()[Mul] != 1 {
		t.Error("variable multiplication must be preserved")
	}
}

func TestStrengthReduceZeroConstant(t *testing.T) {
	g := New()
	x := g.Input("x")
	k := g.Const(0)
	g.MarkOutput(g.Op(Mul, x, k))
	sr := StrengthReduce(g)
	v, err := sr.OutputValues(map[string]int64{"x": 17})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 0 {
		t.Errorf("x*0 = %d", v[0])
	}
}

func TestASAPRespectsDependencies(t *testing.T) {
	g := Poly3Horner()
	s := g.ASAP(nil)
	if err := s.Verify(g, nil); err != nil {
		t.Fatal(err)
	}
	if s.NumSteps != g.CriticalPath(nil) {
		t.Errorf("ASAP steps %d != critical path %d", s.NumSteps, g.CriticalPath(nil))
	}
}

func TestALAPRespectsDeadline(t *testing.T) {
	g := Poly2Direct()
	cp := g.CriticalPath(nil)
	s, err := g.ALAP(cp+2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(g, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ALAP(cp-1, nil); err == nil {
		t.Error("infeasible latency must error")
	}
}

func TestListScheduleResourceLimit(t *testing.T) {
	g := Poly2Direct() // 3 muls: two are ready at step 0
	s, err := g.ListSchedule(map[OpKind]int{Mul: 1, Add: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(g, nil); err != nil {
		t.Fatal(err)
	}
	use := s.ResourceUsage(g, nil)
	if use[Mul] > 1 || use[Add] > 1 {
		t.Errorf("resource limits violated: %v", use)
	}
	// With one multiplier the schedule must be longer than the CP.
	if s.NumSteps <= g.CriticalPath(nil) {
		t.Errorf("constrained schedule %d should exceed CP %d", s.NumSteps, g.CriticalPath(nil))
	}
	// Unconstrained scheduling achieves the critical path.
	s2, err := g.ListSchedule(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumSteps != g.CriticalPath(nil) {
		t.Errorf("unconstrained list schedule %d != CP %d", s2.NumSteps, g.CriticalPath(nil))
	}
}

// condGraph builds a conditional datapath: out = sel ? (a*b + a) : (c+d),
// where both branches are expensive and exclusive.
func condGraph() *Graph {
	g := New()
	sel := g.Input("sel")
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	d := g.Input("d")
	ab := g.Op(Mul, a, b)
	t1 := g.Op(Add, ab, a)
	t2 := g.Op(Add, c, d)
	y := g.Op(Mux, sel, t2, t1)
	g.MarkOutput(y)
	return g
}

func TestPMPlanFindsManageableMux(t *testing.T) {
	g := condGraph()
	plan := PlanPowerManagement(g, nil)
	if len(plan.Manageable) != 1 {
		t.Fatalf("manageable muxes = %d, want 1", len(plan.Manageable))
	}
	for id := range plan.Manageable {
		if len(plan.Branch0[id]) == 0 || len(plan.Branch1[id]) == 0 {
			t.Error("both branches should have exclusive nodes")
		}
	}
}

func TestPMEnergySavings(t *testing.T) {
	g := condGraph()
	plan := PlanPowerManagement(g, nil)
	baseline := plan.BaselineEnergy(nil)
	rng := rand.New(rand.NewSource(4))
	var managed float64
	trials := 200
	for i := 0; i < trials; i++ {
		in := randomInputs(g, rng)
		e, err := plan.EvalEnergy(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if e > baseline {
			t.Fatal("managed energy cannot exceed baseline")
		}
		managed += e
	}
	managed /= float64(trials)
	if managed >= baseline*0.95 {
		t.Errorf("power management saved too little: %v vs %v", managed, baseline)
	}
}

func TestPMPreservesFunction(t *testing.T) {
	// Power management must not change outputs (it only disables unused
	// branches).
	g := condGraph()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		in := randomInputs(g, rng)
		want, err := g.OutputValues(in)
		if err != nil {
			t.Fatal(err)
		}
		// EvalEnergy reuses Eval internally; just re-check Eval is stable.
		got, err := g.OutputValues(in)
		if err != nil {
			t.Fatal(err)
		}
		if want[0] != got[0] {
			t.Fatal("evaluation is nondeterministic?")
		}
	}
}

func TestSharedOperandNotManaged(t *testing.T) {
	// A node feeding both mux branches must never be shut down.
	g := New()
	sel := g.Input("sel")
	a := g.Input("a")
	b := g.Input("b")
	shared := g.Op(Mul, a, b)
	t1 := g.Op(Add, shared, a)
	t2 := g.Op(Sub, shared, b)
	y := g.Op(Mux, sel, t2, t1)
	g.MarkOutput(y)
	plan := PlanPowerManagement(g, nil)
	for id := range plan.Manageable {
		for _, v := range append(plan.Branch0[id], plan.Branch1[id]...) {
			if v == shared {
				t.Fatal("shared node listed as exclusive")
			}
		}
	}
}

func TestOpBadArityStickyError(t *testing.T) {
	// A malformed Op records a sticky typed error on the graph instead
	// of panicking.
	g := New()
	x := g.Input("x")
	g.Op(Add, x)
	if g.Err() == nil {
		t.Error("expected sticky builder error")
	}
}

func TestEvalMissingInput(t *testing.T) {
	g := New()
	g.Input("x")
	if _, err := g.Eval(map[string]int64{}); err == nil {
		t.Error("expected missing-input error")
	}
}

func TestFIRValues(t *testing.T) {
	g := FIR([]int64{2, -3, 4})
	in := map[string]int64{"x0": 1, "x1": 5, "x2": 7}
	v, err := g.OutputValues(in)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2*1 - 3*5 + 4*7)
	if v[0] != want {
		t.Errorf("FIR = %d, want %d", v[0], want)
	}
}

func TestPropertyStrengthReduceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTaps := 2 + rng.Intn(6)
		coeffs := make([]int64, nTaps)
		for i := range coeffs {
			coeffs[i] = int64(rng.Intn(64))
		}
		g := FIR(coeffs)
		sr := StrengthReduce(g)
		for trial := 0; trial < 10; trial++ {
			in := randomInputs(g, rng)
			a, err := g.OutputValues(in)
			if err != nil {
				return false
			}
			b, err := sr.OutputValues(in)
			if err != nil {
				return false
			}
			if a[0] != b[0] {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f, 25); err != nil {
		t.Error(err)
	}
}

func TestPropertyScheduleRespectsDeps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		var pool []int
		for i := 0; i < 4; i++ {
			pool = append(pool, g.Input(string(rune('a'+i))))
		}
		for i := 0; i < 10; i++ {
			kinds := []OpKind{Add, Sub, Mul}
			a := pool[rng.Intn(len(pool))]
			b := pool[rng.Intn(len(pool))]
			pool = append(pool, g.Op(kinds[rng.Intn(len(kinds))], a, b))
		}
		g.MarkOutput(pool[len(pool)-1])
		s, err := g.ListSchedule(map[OpKind]int{Add: 1, Mul: 1, Sub: 1}, nil)
		if err != nil {
			return false
		}
		return s.Verify(g, nil) == nil
	}
	if err := quickCheck(f, 25); err != nil {
		t.Error(err)
	}
}

// sharedOperandGraph: many adds where pairs share an operand — the
// shape activity-aware scheduling exploits.
func sharedOperandGraph() *Graph {
	g := New()
	x := g.Input("x")
	var ins []int
	for i := 0; i < 6; i++ {
		ins = append(ins, g.Input(string(rune('a'+i))))
	}
	var sums []int
	// Half the adds share x; half are unrelated pairs.
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			sums = append(sums, g.Op(Add, x, ins[i]))
		} else {
			sums = append(sums, g.Op(Add, ins[i-1], ins[i]))
		}
	}
	acc := sums[0]
	for i := 1; i < len(sums); i++ {
		acc = g.Op(Mul, acc, sums[i])
	}
	g.MarkOutput(acc)
	return g
}

func TestListScheduleLowActivityValidAndQuieter(t *testing.T) {
	g := sharedOperandGraph()
	res := map[OpKind]int{Add: 1, Mul: 1}
	plain, err := g.ListSchedule(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := g.ListScheduleLowActivity(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := quiet.Verify(g, nil); err != nil {
		t.Fatal(err)
	}
	use := quiet.ResourceUsage(g, nil)
	if use[Add] > 1 || use[Mul] > 1 {
		t.Errorf("resource limits violated: %v", use)
	}
	// Operand switching on units: the activity-aware order must not be
	// worse than the plain mobility order.
	sp := UnitOperandSwitching(g, plain, res)
	sq := UnitOperandSwitching(g, quiet, res)
	if sq > sp {
		t.Errorf("activity-aware operand switching %d exceeds plain %d", sq, sp)
	}
	// Same latency class: activity tie-breaking must not blow up the
	// schedule length.
	if quiet.NumSteps > plain.NumSteps+2 {
		t.Errorf("activity schedule %d steps vs plain %d", quiet.NumSteps, plain.NumSteps)
	}
}
