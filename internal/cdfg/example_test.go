package cdfg_test

import (
	"fmt"

	"hlpower/internal/cdfg"
)

func ExampleStrengthReduce() {
	g := cdfg.FIR([]int64{5, 3})
	sr := cdfg.StrengthReduce(g)
	fmt.Println("multiplications before:", g.OpCounts()[cdfg.Mul])
	fmt.Println("multiplications after: ", sr.OpCounts()[cdfg.Mul])
	y, _ := sr.OutputValues(map[string]int64{"x0": 7, "x1": 2})
	fmt.Println("5*7 + 3*2 =", y[0])
	// Output:
	// multiplications before: 2
	// multiplications after:  0
	// 5*7 + 3*2 = 41
}
