package cdfg

import (
	"fmt"
	"sort"
)

// Schedule assigns each operation node a control step (sources get -1).
type Schedule struct {
	Step     []int
	NumSteps int
}

// ASAP computes the as-soon-as-possible schedule under the delay model.
func (g *Graph) ASAP(delay func(OpKind) int) Schedule {
	if delay == nil {
		delay = DefaultDelay
	}
	s := Schedule{Step: make([]int, len(g.Nodes))}
	finish := make([]int, len(g.Nodes)) // completion step + 1
	for i, n := range g.Nodes {
		if !n.Kind.IsOperation() {
			s.Step[i] = -1
			continue
		}
		start := 0
		for _, a := range n.Args {
			if finish[a] > start {
				start = finish[a]
			}
		}
		s.Step[i] = start
		finish[i] = start + delay(n.Kind)
		if finish[i] > s.NumSteps {
			s.NumSteps = finish[i]
		}
	}
	return s
}

// ALAP computes the as-late-as-possible schedule for the given latency
// (total control steps). It returns an error if latency is infeasible.
func (g *Graph) ALAP(latency int, delay func(OpKind) int) (Schedule, error) {
	if g.err != nil {
		return Schedule{}, g.err
	}
	if delay == nil {
		delay = DefaultDelay
	}
	asap := g.ASAP(delay)
	if latency < asap.NumSteps {
		return Schedule{}, fmt.Errorf("cdfg: latency %d below critical path %d", latency, asap.NumSteps)
	}
	s := Schedule{Step: make([]int, len(g.Nodes)), NumSteps: latency}
	deadline := make([]int, len(g.Nodes)) // latest finish step + 1
	for i := range deadline {
		deadline[i] = latency
	}
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := g.Nodes[i]
		if !n.Kind.IsOperation() {
			s.Step[i] = -1
			continue
		}
		start := deadline[i] - delay(n.Kind)
		s.Step[i] = start
		for _, a := range n.Args {
			if start < deadline[a] {
				deadline[a] = start
			}
		}
	}
	return s, nil
}

// Mobility returns ALAP − ASAP slack per node for the given latency.
func (g *Graph) Mobility(latency int, delay func(OpKind) int) ([]int, error) {
	asap := g.ASAP(delay)
	alap, err := g.ALAP(latency, delay)
	if err != nil {
		return nil, err
	}
	mob := make([]int, len(g.Nodes))
	for i := range mob {
		if g.Nodes[i].Kind.IsOperation() {
			mob[i] = alap.Step[i] - asap.Step[i]
		}
	}
	return mob, nil
}

// ListSchedule performs resource-constrained list scheduling: at each
// step, ready operations are issued in increasing-mobility order while
// units of their kind remain. resources maps an operation kind to its
// unit count (kinds absent from the map are unconstrained). Mux and
// shift operations are customarily unconstrained (wiring/steering).
func (g *Graph) ListSchedule(resources map[OpKind]int, delay func(OpKind) int) (Schedule, error) {
	if g.err != nil {
		return Schedule{}, g.err
	}
	if delay == nil {
		delay = DefaultDelay
	}
	asap := g.ASAP(delay)
	// Generous latency bound for mobility: critical path + total ops.
	bound := asap.NumSteps
	for _, n := range g.Nodes {
		if n.Kind.IsOperation() {
			bound += delay(n.Kind)
		}
	}
	mob, err := g.Mobility(bound, delay)
	if err != nil {
		return Schedule{}, err
	}
	s := Schedule{Step: make([]int, len(g.Nodes))}
	finish := make([]int, len(g.Nodes))
	scheduled := make([]bool, len(g.Nodes))
	for i, n := range g.Nodes {
		if !n.Kind.IsOperation() {
			s.Step[i] = -1
			scheduled[i] = true
		}
	}
	remaining := 0
	for i := range g.Nodes {
		if !scheduled[i] {
			remaining++
		}
	}
	for step := 0; remaining > 0; step++ {
		if step > bound+len(g.Nodes) {
			return Schedule{}, fmt.Errorf("cdfg: list scheduling did not converge")
		}
		// Ready: all args finished by this step; running units occupy
		// their resource for delay steps.
		var ready []int
		for i, n := range g.Nodes {
			if scheduled[i] || !n.Kind.IsOperation() {
				continue
			}
			ok := true
			for _, a := range n.Args {
				if g.Nodes[a].Kind.IsOperation() && (!scheduled[a] || finish[a] > step) {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, i)
			}
		}
		sort.Slice(ready, func(x, y int) bool {
			if mob[ready[x]] != mob[ready[y]] {
				return mob[ready[x]] < mob[ready[y]]
			}
			return ready[x] < ready[y]
		})
		// Count units busy at this step.
		busy := make(map[OpKind]int)
		for i, n := range g.Nodes {
			if scheduled[i] && n.Kind.IsOperation() && s.Step[i] <= step && step < finish[i] {
				busy[n.Kind]++
			}
		}
		for _, i := range ready {
			k := g.Nodes[i].Kind
			if limit, constrained := resources[k]; constrained && busy[k] >= limit {
				continue
			}
			s.Step[i] = step
			finish[i] = step + delay(k)
			scheduled[i] = true
			busy[k]++
			remaining--
			if finish[i] > s.NumSteps {
				s.NumSteps = finish[i]
			}
		}
	}
	return s, nil
}

// Verify checks schedule consistency: every operation starts after its
// operands finish.
func (s Schedule) Verify(g *Graph, delay func(OpKind) int) error {
	if delay == nil {
		delay = DefaultDelay
	}
	for i, n := range g.Nodes {
		if !n.Kind.IsOperation() {
			continue
		}
		for _, a := range n.Args {
			an := g.Nodes[a]
			if !an.Kind.IsOperation() {
				continue
			}
			if s.Step[a]+delay(an.Kind) > s.Step[i] {
				return fmt.Errorf("cdfg: node %d starts at %d before arg %d finishes at %d",
					i, s.Step[i], a, s.Step[a]+delay(an.Kind))
			}
		}
	}
	return nil
}

// ResourceUsage returns the peak number of simultaneously busy units per
// kind under the schedule.
func (s Schedule) ResourceUsage(g *Graph, delay func(OpKind) int) map[OpKind]int {
	if delay == nil {
		delay = DefaultDelay
	}
	peak := make(map[OpKind]int)
	for step := 0; step < s.NumSteps; step++ {
		busy := make(map[OpKind]int)
		for i, n := range g.Nodes {
			if n.Kind.IsOperation() && s.Step[i] <= step && step < s.Step[i]+delay(n.Kind) {
				busy[n.Kind]++
			}
		}
		for k, b := range busy {
			if b > peak[k] {
				peak[k] = b
			}
		}
	}
	return peak
}

// ListScheduleLowActivity is the activity-aware variant of [60]
// (Musoll–Cortadella): among equally mobile ready operations, prefer the
// one sharing the most operands with the operation most recently issued
// on a unit of its kind, so consecutive bindings see quiet inputs. The
// schedule is resource-feasible exactly like ListSchedule.
func (g *Graph) ListScheduleLowActivity(resources map[OpKind]int, delay func(OpKind) int) (Schedule, error) {
	if g.err != nil {
		return Schedule{}, g.err
	}
	if delay == nil {
		delay = DefaultDelay
	}
	asap := g.ASAP(delay)
	bound := asap.NumSteps
	for _, n := range g.Nodes {
		if n.Kind.IsOperation() {
			bound += delay(n.Kind)
		}
	}
	mob, err := g.Mobility(bound, delay)
	if err != nil {
		return Schedule{}, err
	}
	s := Schedule{Step: make([]int, len(g.Nodes))}
	finish := make([]int, len(g.Nodes))
	scheduled := make([]bool, len(g.Nodes))
	lastIssued := make(map[OpKind]int) // most recent op per kind
	for i, n := range g.Nodes {
		if !n.Kind.IsOperation() {
			s.Step[i] = -1
			scheduled[i] = true
		}
	}
	remaining := 0
	for i := range g.Nodes {
		if !scheduled[i] {
			remaining++
		}
	}
	overlap := func(a, b int) int {
		if b < 0 {
			return 0
		}
		n := 0
		for _, x := range g.Nodes[a].Args {
			for _, y := range g.Nodes[b].Args {
				if x == y {
					n++
				}
			}
		}
		return n
	}
	for step := 0; remaining > 0; step++ {
		if step > bound+len(g.Nodes) {
			return Schedule{}, fmt.Errorf("cdfg: activity scheduling did not converge")
		}
		var ready []int
		for i, n := range g.Nodes {
			if scheduled[i] || !n.Kind.IsOperation() {
				continue
			}
			ok := true
			for _, a := range n.Args {
				if g.Nodes[a].Kind.IsOperation() && (!scheduled[a] || finish[a] > step) {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, i)
			}
		}
		sort.Slice(ready, func(x, y int) bool {
			a, b := ready[x], ready[y]
			if mob[a] != mob[b] {
				return mob[a] < mob[b]
			}
			last := -1
			if p, ok := lastIssued[g.Nodes[a].Kind]; ok {
				last = p
			}
			oa, ob := overlap(a, last), overlap(b, last)
			if oa != ob {
				return oa > ob
			}
			return a < b
		})
		busy := make(map[OpKind]int)
		for i, n := range g.Nodes {
			if scheduled[i] && n.Kind.IsOperation() && s.Step[i] <= step && step < finish[i] {
				busy[n.Kind]++
			}
		}
		for _, i := range ready {
			k := g.Nodes[i].Kind
			if limit, constrained := resources[k]; constrained && busy[k] >= limit {
				continue
			}
			s.Step[i] = step
			finish[i] = step + delay(k)
			scheduled[i] = true
			busy[k]++
			lastIssued[k] = i
			remaining--
			if finish[i] > s.NumSteps {
				s.NumSteps = finish[i]
			}
		}
	}
	return s, nil
}

// UnitOperandSwitching scores a schedule's functional-unit input
// activity: operations of each kind are assigned round-robin by step to
// the constrained unit count, and the operand-set changes between
// consecutive operations on each unit are counted (structural proxy for
// the switching the activity-aware scheduler minimizes).
func UnitOperandSwitching(g *Graph, s Schedule, resources map[OpKind]int) int {
	type unitKey struct {
		kind OpKind
		unit int
	}
	// Collect ops per kind ordered by step.
	byKind := make(map[OpKind][]int)
	for _, n := range g.Nodes {
		if n.Kind.IsOperation() && n.Kind != Mux {
			byKind[n.Kind] = append(byKind[n.Kind], n.ID)
		}
	}
	total := 0
	for kind, ops := range byKind {
		sort.Slice(ops, func(i, j int) bool { return s.Step[ops[i]] < s.Step[ops[j]] })
		units := resources[kind]
		if units <= 0 {
			units = 1
		}
		last := make(map[unitKey]int)
		for idx, op := range ops {
			k := unitKey{kind, idx % units}
			if prev, ok := last[k]; ok {
				changed := 0
				for pi, a := range g.Nodes[op].Args {
					if pi < len(g.Nodes[prev].Args) && g.Nodes[prev].Args[pi] != a {
						changed++
					}
				}
				total += changed
			}
			last[k] = op
		}
	}
	return total
}
