package cdfg

// Power-management scheduling (Monteiro et al. [63], §III-D): schedule
// the control logic of each multiplexor as late as possible ahead of the
// data computations it gates, so that the non-selected branch can be
// shut down. Nodes feeding both branches are needed regardless and are
// excluded; a mux is power-manageable when its control can finish before
// either exclusive branch must start.

// PMPlan records, for each manageable mux, the exclusive node sets of
// its two branches.
type PMPlan struct {
	Graph *Graph
	// Manageable[id] is set for muxes where shutdown is feasible.
	Manageable map[int]bool
	// Branch0/Branch1 list the nodes exclusive to the 0/1 inputs of each
	// manageable mux.
	Branch0 map[int][]int
	Branch1 map[int][]int
}

// PlanPowerManagement analyzes every mux bottom-up (muxes nearer the
// outputs first, the paper's heuristic order) and decides manageability
// by the ASAP/ALAP feasibility test: the control cone must be able to
// finish (ALAP) no later than the earliest start (ASAP) of every
// exclusive branch node.
func PlanPowerManagement(g *Graph, delay func(OpKind) int) *PMPlan {
	if delay == nil {
		delay = DefaultDelay
	}
	plan := &PMPlan{
		Graph:      g,
		Manageable: make(map[int]bool),
		Branch0:    make(map[int][]int),
		Branch1:    make(map[int][]int),
	}
	asap := g.ASAP(delay)
	// Process muxes in reverse topological order (closest to outputs
	// first).
	for id := len(g.Nodes) - 1; id >= 0; id-- {
		n := g.Nodes[id]
		if n.Kind != Mux {
			continue
		}
		nc := g.TransitiveFanin(n.Args[0], true)
		n0 := g.TransitiveFanin(n.Args[1], true)
		n1 := g.TransitiveFanin(n.Args[2], true)
		// Nodes in both branches (or also needed by the control) are not
		// shut-downable.
		excl0, excl1 := []int{}, []int{}
		for v := range n0 {
			if !n1[v] && !nc[v] && g.Nodes[v].Kind.IsOperation() {
				excl0 = append(excl0, v)
			}
		}
		for v := range n1 {
			if !n0[v] && !nc[v] && g.Nodes[v].Kind.IsOperation() {
				excl1 = append(excl1, v)
			}
		}
		if len(excl0) == 0 && len(excl1) == 0 {
			continue // nothing to save
		}
		// Control completion time (ASAP of the control cone's sink).
		ctrlFinish := 0
		if g.Nodes[n.Args[0]].Kind.IsOperation() {
			ctrlFinish = asap.Step[n.Args[0]] + delay(g.Nodes[n.Args[0]].Kind)
		}
		// Feasible iff every exclusive node can start (ALAP within the
		// mux's own ASAP window) after the control finishes. We test
		// against the node's latest feasible start given the mux's
		// unchanged start time.
		muxStart := asap.Step[id]
		feasible := true
		for _, sets := range [][]int{excl0, excl1} {
			for _, v := range sets {
				// Latest start for v so the mux is not delayed: the
				// longest delay-path from v to the mux input bounds it.
				slack := muxStart - pathDelay(g, v, id, delay)
				if slack < ctrlFinish {
					feasible = false
					break
				}
			}
			if !feasible {
				break
			}
		}
		if !feasible {
			continue
		}
		plan.Manageable[id] = true
		plan.Branch0[id] = excl0
		plan.Branch1[id] = excl1
	}
	return plan
}

// pathDelay returns the maximum delay from the *start* of node v to the
// *start* of node target along any dependence path (v's delay counted,
// target's excluded), or 0 if no path exists.
func pathDelay(g *Graph, v, target int, delay func(OpKind) int) int {
	memo := make(map[int]int)
	var rec func(int) int // start-of-n to start-of-target
	rec = func(n int) int {
		if n == target {
			return 0
		}
		if d, ok := memo[n]; ok {
			return d
		}
		best := -1 // no path
		for id := n + 1; id <= target; id++ {
			for _, a := range g.Nodes[id].Args {
				if a != n {
					continue
				}
				if d := rec(id); d >= 0 && d > best {
					best = d
				}
			}
		}
		if best >= 0 {
			best += delay(g.Nodes[n].Kind)
		}
		memo[n] = best
		return best
	}
	d := rec(v)
	if d < 0 {
		return 0
	}
	return d
}

// EvalEnergy evaluates the graph on one input assignment and returns the
// energy of the operations actually powered: without a plan every
// operation executes; with the plan, the non-selected exclusive branch
// of every manageable mux is shut down.
func (p *PMPlan) EvalEnergy(inputs map[string]int64, energy func(OpKind) float64) (float64, error) {
	if energy == nil {
		energy = DefaultEnergy
	}
	g := p.Graph
	vals, err := g.Eval(inputs)
	if err != nil {
		return 0, err
	}
	disabled := make(map[int]bool)
	for id := range p.Manageable {
		n := g.Nodes[id]
		var off []int
		if vals[n.Args[0]] != 0 {
			off = p.Branch0[id] // branch 1 selected: shut branch 0
		} else {
			off = p.Branch1[id]
		}
		for _, v := range off {
			disabled[v] = true
		}
	}
	var e float64
	for _, n := range g.Nodes {
		if !n.Kind.IsOperation() || disabled[n.ID] {
			continue
		}
		e += energy(n.Kind)
	}
	return e, nil
}

// BaselineEnergy is the energy with no power management (all ops run).
func (p *PMPlan) BaselineEnergy(energy func(OpKind) float64) float64 {
	return p.Graph.TotalEnergy(energy)
}
