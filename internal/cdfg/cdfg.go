// Package cdfg implements the control-data-flow-graph layer of the
// high-level synthesis sections: graph construction and evaluation,
// ASAP/ALAP/resource-constrained list scheduling (§III-D), the Monteiro
// power-management scheduling that shuts down mutually exclusive mux
// branches, and the behavioral transformations of §III-C (Horner
// restructuring, strength reduction, constant-multiplication to
// shift/add).
package cdfg

import (
	"fmt"
	"math/bits"

	"hlpower/internal/hlerr"
)

// OpKind enumerates CDFG node types.
type OpKind uint8

// Node kinds. Input and Const are sources; Mux selects In1 when the
// control value is nonzero.
const (
	Input OpKind = iota
	Const
	Add
	Sub
	Mul
	Shl
	Shr
	Mux
	Cmp // 1 if a < b
)

var kindNames = [...]string{
	Input: "in", Const: "const", Add: "add", Sub: "sub", Mul: "mul",
	Shl: "shl", Shr: "shr", Mux: "mux", Cmp: "cmp",
}

func (k OpKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// IsOperation reports whether the node consumes a functional unit.
func (k OpKind) IsOperation() bool { return k != Input && k != Const }

// DefaultDelay is the schedule delay (control steps) per operation kind;
// the paper's Figs. 4–5 count every operation as one step.
func DefaultDelay(k OpKind) int {
	if !k.IsOperation() {
		return 0
	}
	return 1
}

// DefaultEnergy is the per-execution energy weight of each operation,
// reflecting the §III-C observation that multiplications dominate.
func DefaultEnergy(k OpKind) float64 {
	switch k {
	case Mul:
		return 8
	case Add, Sub:
		return 1
	case Shl, Shr:
		return 0.3
	case Mux:
		return 0.2
	case Cmp:
		return 0.8
	default:
		return 0
	}
}

// Node is one CDFG vertex. Args are node ids; Mux args are
// (control, in0, in1).
type Node struct {
	ID    int
	Kind  OpKind
	Args  []int
	Value int64 // Const only
	Name  string
}

// Graph is a DAG of operations with designated outputs.
type Graph struct {
	Nodes   []Node
	Outputs []int
	nameIdx map[string]int
	err     error // sticky construction error (first malformed call)
}

// Err returns the first construction error recorded by a malformed
// builder call (bad arity, out-of-range argument), or nil. Scheduling
// and evaluation entry points propagate it, so a malformed graph
// degrades to an error instead of a panic.
func (g *Graph) Err() error { return g.err }

// fail records a construction error and appends a constant-0
// placeholder node so the returned id stays valid for later calls.
func (g *Graph) fail(op, format string, args ...any) int {
	if g.err == nil {
		g.err = hlerr.Errorf(op, format, args...)
	}
	return g.add(Node{Kind: Const})
}

// New returns an empty graph.
func New() *Graph { return &Graph{nameIdx: make(map[string]int)} }

func (g *Graph) add(n Node) int {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n.ID
}

// Input declares a named input.
func (g *Graph) Input(name string) int {
	id := g.add(Node{Kind: Input, Name: name})
	g.nameIdx[name] = id
	return id
}

// Const declares a constant.
func (g *Graph) Const(v int64) int { return g.add(Node{Kind: Const, Value: v}) }

// Op appends an operation node. Malformed calls (bad arity, dangling
// argument) record a sticky error on the graph — see Err — and return
// a safe placeholder id instead of panicking.
func (g *Graph) Op(k OpKind, args ...int) int {
	for _, a := range args {
		if a < 0 || a >= len(g.Nodes) {
			return g.fail("cdfg.Op", "arg %d out of range [0,%d)", a, len(g.Nodes))
		}
	}
	want := 2
	if k == Mux {
		want = 3
	}
	if len(args) != want {
		return g.fail("cdfg.Op", "%v takes %d args, got %d", k, want, len(args))
	}
	return g.add(Node{Kind: k, Args: append([]int(nil), args...)})
}

// MarkOutput marks a node as a graph output.
func (g *Graph) MarkOutput(id int) { g.Outputs = append(g.Outputs, id) }

// InputIDs returns input node ids in declaration order.
func (g *Graph) InputIDs() []int {
	var ids []int
	for _, n := range g.Nodes {
		if n.Kind == Input {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// OpCounts tallies operation nodes by kind.
func (g *Graph) OpCounts() map[OpKind]int {
	c := make(map[OpKind]int)
	for _, n := range g.Nodes {
		if n.Kind.IsOperation() {
			c[n.Kind]++
		}
	}
	return c
}

// CriticalPath returns the longest operation-weighted path length using
// the given delay function (DefaultDelay when nil).
func (g *Graph) CriticalPath(delay func(OpKind) int) int {
	if delay == nil {
		delay = DefaultDelay
	}
	depth := make([]int, len(g.Nodes))
	max := 0
	for i, n := range g.Nodes { // nodes are in topological order by construction
		d := 0
		for _, a := range n.Args {
			if depth[a] > d {
				d = depth[a]
			}
		}
		depth[i] = d + delay(n.Kind)
		if depth[i] > max {
			max = depth[i]
		}
	}
	return max
}

// Eval computes all node values for the given input assignment.
func (g *Graph) Eval(inputs map[string]int64) ([]int64, error) {
	if g.err != nil {
		return nil, g.err
	}
	vals := make([]int64, len(g.Nodes))
	for i, n := range g.Nodes {
		switch n.Kind {
		case Input:
			v, ok := inputs[n.Name]
			if !ok {
				return nil, fmt.Errorf("cdfg: missing input %q", n.Name)
			}
			vals[i] = v
		case Const:
			vals[i] = n.Value
		case Add:
			vals[i] = vals[n.Args[0]] + vals[n.Args[1]]
		case Sub:
			vals[i] = vals[n.Args[0]] - vals[n.Args[1]]
		case Mul:
			vals[i] = vals[n.Args[0]] * vals[n.Args[1]]
		case Shl:
			vals[i] = vals[n.Args[0]] << uint(vals[n.Args[1]]&63)
		case Shr:
			vals[i] = vals[n.Args[0]] >> uint(vals[n.Args[1]]&63)
		case Mux:
			if vals[n.Args[0]] != 0 {
				vals[i] = vals[n.Args[2]]
			} else {
				vals[i] = vals[n.Args[1]]
			}
		case Cmp:
			if vals[n.Args[0]] < vals[n.Args[1]] {
				vals[i] = 1
			}
		default:
			return nil, fmt.Errorf("cdfg: unknown kind %v", n.Kind)
		}
	}
	return vals, nil
}

// OutputValues evaluates the graph and returns just the outputs.
func (g *Graph) OutputValues(inputs map[string]int64) ([]int64, error) {
	vals, err := g.Eval(inputs)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(g.Outputs))
	for i, o := range g.Outputs {
		out[i] = vals[o]
	}
	return out, nil
}

// TotalEnergy returns the summed energy weight of one full evaluation
// (every operation executes once).
func (g *Graph) TotalEnergy(energy func(OpKind) float64) float64 {
	if energy == nil {
		energy = DefaultEnergy
	}
	var e float64
	for _, n := range g.Nodes {
		e += energy(n.Kind)
	}
	return e
}

// TransitiveFanin returns the set of node ids feeding the given node
// (inclusive of the node itself when inclusive is true).
func (g *Graph) TransitiveFanin(id int, inclusive bool) map[int]bool {
	seen := make(map[int]bool)
	var rec func(int)
	rec = func(n int) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, a := range g.Nodes[n].Args {
			rec(a)
		}
	}
	rec(id)
	if !inclusive {
		delete(seen, id)
	}
	return seen
}

// ---------------------------------------------------------------------
// Canonical example graphs (Figs. 4 and 5).

// Poly2Direct builds a·x² + b·x + c in the balanced straightforward
// form of Fig. 4 (left): x² and b·x in parallel, then a·x² and b·x+c,
// then the final add — 3 multiplications, 2 additions, critical path 3.
func Poly2Direct() *Graph {
	g := New()
	x := g.Input("x")
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	x2 := g.Op(Mul, x, x)
	bx := g.Op(Mul, b, x)
	ax2 := g.Op(Mul, a, x2)
	s1 := g.Op(Add, bx, c)
	y := g.Op(Add, ax2, s1)
	g.MarkOutput(y)
	return g
}

// Poly2Horner builds ((a·x + b)·x + c): 2 multiplies, 2 adds, critical
// path 4 ops but only one multiplier needed.
func Poly2Horner() *Graph {
	g := New()
	x := g.Input("x")
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	t1 := g.Op(Mul, a, x)
	s1 := g.Op(Add, t1, b)
	t2 := g.Op(Mul, s1, x)
	y := g.Op(Add, t2, c)
	g.MarkOutput(y)
	return g
}

// Poly3Direct builds a·x³ + b·x² + c·x + d in the balanced form of
// Fig. 5 (left): (a·x + b)·x² + (c·x + d) — 4 multiplications,
// 3 additions, critical path 4.
func Poly3Direct() *Graph {
	g := New()
	x := g.Input("x")
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	d := g.Input("d")
	x2 := g.Op(Mul, x, x)
	ax := g.Op(Mul, a, x)
	cx := g.Op(Mul, c, x)
	t := g.Op(Add, ax, b)
	v := g.Op(Add, cx, d)
	u := g.Op(Mul, t, x2)
	y := g.Op(Add, u, v)
	g.MarkOutput(y)
	return g
}

// Poly3Horner builds (((a·x + b)·x + c)·x + d): 3 multiplies, 3 adds,
// critical path 6 — fewer operations but slower than the direct form,
// the paper's example of the transformation's contradictory effects.
func Poly3Horner() *Graph {
	g := New()
	x := g.Input("x")
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	d := g.Input("d")
	t1 := g.Op(Mul, a, x)
	s1 := g.Op(Add, t1, b)
	t2 := g.Op(Mul, s1, x)
	s2 := g.Op(Add, t2, c)
	t3 := g.Op(Mul, s2, x)
	y := g.Op(Add, t3, d)
	g.MarkOutput(y)
	return g
}

// FIR builds a taps-tap FIR filter CDFG y = Σ c_i·x_i with the
// coefficients as constants — the Table I workload.
func FIR(coeffs []int64) *Graph {
	g := New()
	var acc int = -1
	for i, c := range coeffs {
		x := g.Input(fmt.Sprintf("x%d", i))
		k := g.Const(c)
		t := g.Op(Mul, x, k)
		if acc < 0 {
			acc = t
		} else {
			acc = g.Op(Add, acc, t)
		}
	}
	g.MarkOutput(acc)
	return g
}

// ---------------------------------------------------------------------
// Transformations (§III-C).

// StrengthReduce rewrites multiplications by constant operands into
// shift-and-add chains over the constant's set bits, returning a new
// graph. Non-constant multiplications are preserved.
func StrengthReduce(g *Graph) *Graph {
	out := New()
	remap := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		switch n.Kind {
		case Input:
			remap[n.ID] = out.Input(n.Name)
		case Const:
			remap[n.ID] = out.Const(n.Value)
		case Mul:
			a, b := n.Args[0], n.Args[1]
			var varArg, constVal = -1, int64(0)
			if g.Nodes[a].Kind == Const {
				varArg, constVal = b, g.Nodes[a].Value
			} else if g.Nodes[b].Kind == Const {
				varArg, constVal = a, g.Nodes[b].Value
			}
			if varArg < 0 || constVal < 0 {
				remap[n.ID] = out.Op(Mul, remap[a], remap[b])
				continue
			}
			remap[n.ID] = emitShiftAdd(out, remap[varArg], uint64(constVal))
		default:
			args := make([]int, len(n.Args))
			for i, a := range n.Args {
				args[i] = remap[a]
			}
			remap[n.ID] = out.Op(n.Kind, args...)
		}
	}
	for _, o := range g.Outputs {
		out.MarkOutput(remap[o])
	}
	return out
}

// emitShiftAdd builds x*k as a sum of shifted copies of x.
func emitShiftAdd(g *Graph, x int, k uint64) int {
	if k == 0 {
		return g.Const(0)
	}
	acc := -1
	for k != 0 {
		sh := bits.TrailingZeros64(k)
		k &^= 1 << uint(sh)
		var term int
		if sh == 0 {
			term = x
		} else {
			term = g.Op(Shl, x, g.Const(int64(sh)))
		}
		if acc < 0 {
			acc = term
		} else {
			acc = g.Op(Add, acc, term)
		}
	}
	return acc
}
