package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store persists checkpoint snapshots by job id. Implementations must
// make Save atomic: a reader never observes a half-written snapshot
// (the CRC envelope backstops whatever the filesystem still manages to
// tear). Load reports ok=false for an unknown id, reserving errors for
// real I/O failures.
type Store interface {
	Save(id string, snap []byte) error
	Load(id string) (snap []byte, ok bool, err error)
	List() ([]string, error)
	Delete(id string) error
}

// MemStore is the in-process Store: survives drain/restart cycles that
// share the store value (as the soak harness does), not the process.
type MemStore struct {
	mu    sync.Mutex
	snaps map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{snaps: map[string][]byte{}} }

func (s *MemStore) Save(id string, snap []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snaps[id] = append([]byte(nil), snap...)
	return nil
}

func (s *MemStore) Load(id string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.snaps[id]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), snap...), true, nil
}

func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.snaps))
	for id := range s.snaps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.snaps, id)
	return nil
}

// FileStore persists snapshots as <dir>/<id>.snap via write-to-temp +
// atomic rename, so a crash mid-checkpoint leaves either the previous
// snapshot or the new one — never a torn file. Job ids are validated
// against a conservative character set before touching the
// filesystem; anything else is rejected, which also makes path
// traversal structurally impossible.
type FileStore struct {
	Dir string
}

// NewFileStore creates the directory if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: store dir: %w", err)
	}
	return &FileStore{Dir: dir}, nil
}

const snapExt = ".snap"

func validID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("jobs: bad snapshot id %q", id)
	}
	for _, r := range id {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '-', r == '_':
		default:
			return fmt.Errorf("jobs: bad snapshot id %q", id)
		}
	}
	return nil
}

func (s *FileStore) Save(id string, snap []byte) error {
	if err := validID(id); err != nil {
		return err
	}
	final := filepath.Join(s.Dir, id+snapExt)
	tmp, err := os.CreateTemp(s.Dir, ".tmp-"+id+"-*")
	if err != nil {
		return fmt.Errorf("jobs: checkpoint: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(snap); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("jobs: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("jobs: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("jobs: checkpoint: %w", err)
	}
	if err := os.Rename(name, final); err != nil {
		os.Remove(name)
		return fmt.Errorf("jobs: checkpoint: %w", err)
	}
	return nil
}

func (s *FileStore) Load(id string) ([]byte, bool, error) {
	if err := validID(id); err != nil {
		return nil, false, err
	}
	snap, err := os.ReadFile(filepath.Join(s.Dir, id+snapExt))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("jobs: load snapshot: %w", err)
	}
	return snap, true, nil
}

func (s *FileStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: list snapshots: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapExt) {
			continue
		}
		id := strings.TrimSuffix(name, snapExt)
		if validID(id) == nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

func (s *FileStore) Delete(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	err := os.Remove(filepath.Join(s.Dir, id+snapExt))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
