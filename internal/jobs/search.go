package jobs

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hlpower/internal/budget"
	"hlpower/internal/memo"
	"hlpower/internal/recipe"
)

// ErrStalled matches stall errors via errors.Is.
var ErrStalled = errors.New("jobs: pass stalled")

// StallError is the typed timeout the per-job watchdog raises when a
// candidate's evaluation stops making progress. It degrades the
// candidate; the job carries on.
type StallError struct {
	Recipe  []string
	Timeout time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("jobs: recipe %v stalled past %v", e.Recipe, e.Timeout)
}

func (e *StallError) Is(target error) bool { return target == ErrStalled }

// mix is a splitmix64-style finalizer used to derive every random
// draw of the search as a pure function of its inputs — never of call
// order — so a resumed job regenerates exactly the candidates an
// uninterrupted run would have seen.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashStrings folds a string list into the seed stream.
func hashStrings(x uint64, names []string) uint64 {
	for _, s := range names {
		x = mix(x ^ uint64(len(s)))
		for i := 0; i < len(s); i++ {
			x = mix(x ^ uint64(s[i]))
		}
	}
	return x
}

// drawRNG is a tiny deterministic generator over the mix stream.
type drawRNG struct{ x uint64 }

func (r *drawRNG) next() uint64 { r.x = mix(r.x); return r.x }
func (r *drawRNG) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// candidateRecipe generates the candidate for one search step: a pure
// function of (job seed, step, best-so-far recipe, vocabulary). Even
// steps with a non-empty best-so-far memory mutate it (replace /
// insert / delete one pass); everything else draws a fresh random
// recipe. This is the explore/exploit loop of recipe search, shaped so
// checkpoint resume is trivially bit-identical.
func candidateRecipe(seed int64, step int, best []string, vocab []string, maxLen int) []string {
	if len(vocab) == 0 {
		return nil
	}
	if maxLen < 1 {
		maxLen = 1
	}
	r := &drawRNG{x: hashStrings(mix(uint64(seed)^uint64(step)), best)}
	if len(best) > 0 && r.intn(2) == 0 {
		// Exploit: mutate the best-so-far recipe.
		out := append([]string(nil), best...)
		switch op := r.intn(3); {
		case op == 0: // replace
			out[r.intn(len(out))] = vocab[r.intn(len(vocab))]
		case op == 1 && len(out) < maxLen: // insert
			at := r.intn(len(out) + 1)
			out = append(out[:at], append([]string{vocab[r.intn(len(vocab))]}, out[at:]...)...)
		default: // delete
			at := r.intn(len(out))
			out = append(out[:at], out[at+1:]...)
		}
		if len(out) > 0 {
			return out
		}
		// Deleting the last pass leaves the empty recipe; fall through
		// to exploration so the step still evaluates something new.
	}
	out := make([]string, 1+r.intn(maxLen))
	for i := range out {
		out[i] = vocab[r.intn(len(vocab))]
	}
	return out
}

// passSeed derives the RNG seed of one pass application from the job
// seed and the recipe prefix *content* ending at that pass. Prefix
// content — not step number or position alone — so two recipes sharing
// a prefix produce identical intermediate designs, which is what makes
// prefix-level memoization sound.
func passSeed(seed int64, prefix []string) uint64 {
	return mix(hashStrings(uint64(seed), prefix))
}

// prefixKey is the memo-cache key of the design produced by applying a
// recipe prefix to the job's baseline. It includes every field that
// shapes the resulting design bits: the spec and seed (baseline +
// workload + pass seeds), the cycle counts (verification stimulus),
// and the per-candidate budget limits (budget-governed passes degrade
// deterministically at fixed limits).
func prefixKey(p Params, prefix []string) memo.Key {
	e := memo.NewEnc()
	e.String("jobs/prefix/v1")
	p.Spec.EncodeTo(e)
	e.Int64(p.Seed)
	e.Int(p.EvalCycles)
	e.Int(p.VerifyCycles)
	e.Int64(p.EvalSteps)
	e.Int64(p.CheckInterval)
	e.Int(len(prefix))
	for _, name := range prefix {
		e.String(name)
	}
	return e.Key()
}

// cachedDesign is the prefix-cache value: the transformed design plus
// the budget steps its computation charged, replayed on every cache
// hit so hit and miss runs follow bit-identical budget trajectories
// (the resume guarantee cannot depend on cache warmth).
type cachedDesign struct {
	d     *recipe.Design
	steps int64
}

// evalResult carries one candidate evaluation's outcome.
type evalResult struct {
	score float64
	used  int64
	hits  int64
	err   error
}

// evaluate applies the candidate recipe pass by pass (through the
// prefix cache when one is installed) and scores the final design.
// The budget is fresh per candidate: EvalSteps governs all pass
// application, verification, and scoring, and the context carries
// cancellation from the job and the watchdog.
func (m *Manager) evaluate(ctx context.Context, p Params, d *recipe.Design, w *recipe.Workload, names []string, plan *budget.FaultPlan) evalResult {
	opts := []budget.Option{
		budget.WithMaxSteps(p.EvalSteps),
		budget.WithCheckInterval(p.CheckInterval),
		budget.WithContext(ctx),
	}
	if plan != nil {
		opts = append(opts, budget.WithFaultPlan(*plan))
	}
	b := budget.New(opts...)
	used := func(err error) int64 {
		// On a budget trip the exact used count depends on where the
		// trip was noticed (mid-pass vs replayed charge), so account
		// the full allowance; successful evaluations charge their exact
		// deterministic cost.
		if errors.Is(err, budget.ErrExceeded) {
			return p.EvalSteps
		}
		return b.StepsUsed()
	}

	cache := m.cache()
	if b.FaultArmed() {
		// An armed plan can degrade any pass; degraded artifacts must
		// never be shared, so bypass the cache entirely (the same
		// honesty invariant the estimation endpoints follow).
		cache = nil
	}
	var hits int64
	cur := d
	for i := range names {
		prefix := names[:i+1]
		seed := passSeed(p.Seed, prefix)
		var next *recipe.Design
		var err error
		if cache == nil {
			next, err = recipe.Apply(b, cur, w, names[i], seed)
		} else {
			before := b.StepsUsed()
			in := cur
			val, shared, cerr := cache.Do(prefixKey(p, prefix), func() (any, int64, bool, error) {
				nd, aerr := recipe.Apply(b, in, w, names[i], seed)
				if aerr != nil {
					return nil, 0, false, aerr
				}
				return &cachedDesign{d: nd, steps: b.StepsUsed() - before}, nd.SizeBytes(), true, nil
			})
			if cerr != nil {
				err = cerr
			} else {
				cd := val.(*cachedDesign)
				next = cd.d
				if shared {
					hits++
					// Replay the charge the fresh computation made.
					err = b.Step(cd.steps)
				}
			}
		}
		if err != nil {
			return evalResult{used: used(err), hits: hits, err: err}
		}
		cur = next
	}
	score, err := recipe.Score(b, cur, w)
	if err != nil {
		return evalResult{used: used(err), hits: hits, err: err}
	}
	return evalResult{score: score, used: b.StepsUsed(), hits: hits}
}

// evalCandidate wraps evaluate with the per-job watchdog: a candidate
// that makes no progress within StallTimeout is cancelled through its
// budget context and failed with a typed *StallError. The watchdog
// waits for the evaluation goroutine to unwind (budget-governed passes
// notice cancellation at their next check point) so stalled candidates
// do not leak goroutines; a pass that ignores its budget entirely is
// abandoned after a second grace period.
func (m *Manager) evalCandidate(j *job, p Params, d *recipe.Design, w *recipe.Workload, names []string, plan *budget.FaultPlan) evalResult {
	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	ch := make(chan evalResult, 1)
	go func() {
		ch <- m.evaluate(ctx, p, d, w, names, plan)
	}()
	stall := m.cfg.StallTimeout
	timer := time.NewTimer(stall)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r
	case <-timer.C:
	}
	cancel()
	grace := time.NewTimer(stall)
	defer grace.Stop()
	select {
	case r := <-ch:
		return evalResult{used: r.used, err: &StallError{Recipe: names, Timeout: stall}}
	case <-grace.C:
		// The pass is ignoring its budget; abandon the goroutine rather
		// than hang the whole job.
		return evalResult{err: &StallError{Recipe: names, Timeout: stall}}
	}
}
