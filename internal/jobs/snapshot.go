package jobs

import (
	"fmt"
	"hash/crc64"
	"math"

	"hlpower/internal/memo"
	"hlpower/internal/recipe"
)

// Snapshot envelope: an 8-byte magic (which doubles as the format
// version), an 8-byte CRC64/ECMA of the payload, then the payload in
// the memo package's type-tagged canonical encoding. The CRC catches
// torn or bit-rotted files; the type tags catch structurally corrupt
// payloads; both fail closed with *SnapshotError — a damaged
// checkpoint must never panic or silently resume the wrong state.
const snapMagic = "HLPJOB1\x00"

var crcTable = crc64.MakeTable(crc64.ECMA)

// SnapshotError is the typed failure for undecodable snapshots.
type SnapshotError struct {
	Reason string
}

func (e *SnapshotError) Error() string { return "jobs: bad snapshot: " + e.Reason }

// Job phases.
const (
	PhaseRunning  = "running"
	PhaseDone     = "done"
	PhaseFailed   = "failed"
	PhaseCanceled = "canceled"
)

// Params is everything that defines a job's work — including the
// budget-relevant evaluation limits, so a resumed job replays the
// exact budget trajectory of the original even on a server configured
// differently.
type Params struct {
	Spec          recipe.Spec
	Token         string
	Seed          int64
	Candidates    int   // search steps (candidate evaluations)
	EvalCycles    int   // scoring stimulus length
	VerifyCycles  int   // equivalence stimulus length
	MaxRecipeLen  int   // longest random recipe drawn
	EvalSteps     int64 // per-candidate budget
	CheckInterval int64
	MaxTotalSteps int64 // aggregate step ceiling across candidates (0 = none)
}

func (p Params) encodeTo(e *memo.Enc) {
	p.Spec.EncodeTo(e)
	e.String(p.Token)
	e.Int64(p.Seed)
	e.Int(p.Candidates)
	e.Int(p.EvalCycles)
	e.Int(p.VerifyCycles)
	e.Int(p.MaxRecipeLen)
	e.Int64(p.EvalSteps)
	e.Int64(p.CheckInterval)
	e.Int64(p.MaxTotalSteps)
}

func (p *Params) decodeFrom(d *memo.Dec) {
	p.Spec.DecodeFrom(d)
	p.Token = d.String()
	p.Seed = d.Int64()
	p.Candidates = int(d.Int64())
	p.EvalCycles = int(d.Int64())
	p.VerifyCycles = int(d.Int64())
	p.MaxRecipeLen = int(d.Int64())
	p.EvalSteps = d.Int64()
	p.CheckInterval = d.Int64()
	p.MaxTotalSteps = d.Int64()
}

// Key is the job's content identity: every field of Params, hashed
// canonically. It names the job (the job id is its hex form), makes
// resubmission idempotent by construction, and is what cluster mode
// hashes onto the ring to pick the job's owner.
func (p Params) Key() memo.Key {
	e := memo.NewEnc()
	e.String("powerd/optimize/v1")
	p.encodeTo(e)
	return e.Key()
}

// State is the complete checkpointed search state. Together with the
// deterministic candidate generator it is sufficient to resume a job
// mid-search and converge to a Float64bits-identical best recipe and
// score versus an uninterrupted run.
type State struct {
	ID     string
	Params Params

	Step         int // next candidate index to evaluate (the cursor)
	BaselineDone bool
	BaseScore    float64
	BestScore    float64
	BestRecipe   []string

	Evaluated int64
	Degraded  int64
	CacheHits int64
	StepsUsed int64

	Phase     string // running | done | failed | canceled
	Exhausted bool   // MaxTotalSteps ceiling ended the search early
	Err       string // terminal failure detail (phase == failed)
	LastError string // most recent degraded-candidate error, for observability
}

// maxSnapshotRecipe bounds decoded recipe lengths so a corrupt length
// field cannot trigger a huge allocation.
const maxSnapshotRecipe = 1 << 12

// EncodeState serializes a checkpoint snapshot.
func EncodeState(st *State) []byte {
	e := memo.NewEnc()
	e.String(st.ID)
	st.Params.encodeTo(e)
	e.Int(st.Step)
	e.Bool(st.BaselineDone)
	e.Float64(st.BaseScore)
	e.Float64(st.BestScore)
	e.Int(len(st.BestRecipe))
	for _, name := range st.BestRecipe {
		e.String(name)
	}
	e.Int64(st.Evaluated)
	e.Int64(st.Degraded)
	e.Int64(st.CacheHits)
	e.Int64(st.StepsUsed)
	e.String(st.Phase)
	e.Bool(st.Exhausted)
	e.String(st.Err)
	e.String(st.LastError)
	payload := e.Data()

	out := make([]byte, 0, 16+len(payload))
	out = append(out, snapMagic...)
	var crc [8]byte
	sum := crc64.Checksum(payload, crcTable)
	for i := 0; i < 8; i++ {
		crc[i] = byte(sum >> uint(56-8*i))
	}
	out = append(out, crc[:]...)
	return append(out, payload...)
}

// DecodeState parses and validates a checkpoint snapshot. Any
// corruption — bad magic, CRC mismatch, truncation, tag mismatch,
// trailing bytes, out-of-range fields — yields a *SnapshotError.
func DecodeState(b []byte) (*State, error) {
	if len(b) < 16 {
		return nil, &SnapshotError{Reason: fmt.Sprintf("%d bytes, need at least 16", len(b))}
	}
	if string(b[:8]) != snapMagic {
		return nil, &SnapshotError{Reason: "bad magic"}
	}
	var want uint64
	for i := 0; i < 8; i++ {
		want = want<<8 | uint64(b[8+i])
	}
	payload := b[16:]
	if got := crc64.Checksum(payload, crcTable); got != want {
		return nil, &SnapshotError{Reason: fmt.Sprintf("crc mismatch %016x != %016x", got, want)}
	}
	d := memo.DecBytes(payload)
	st := &State{}
	st.ID = d.String()
	st.Params.decodeFrom(d)
	st.Step = int(d.Int64())
	st.BaselineDone = d.Bool()
	st.BaseScore = d.Float64()
	st.BestScore = d.Float64()
	n := int(d.Int64())
	if d.Err() == nil {
		if n < 0 || n > maxSnapshotRecipe {
			return nil, &SnapshotError{Reason: fmt.Sprintf("recipe length %d out of range", n)}
		}
		st.BestRecipe = make([]string, n)
		for i := range st.BestRecipe {
			st.BestRecipe[i] = d.String()
		}
	}
	st.Evaluated = d.Int64()
	st.Degraded = d.Int64()
	st.CacheHits = d.Int64()
	st.StepsUsed = d.Int64()
	st.Phase = d.String()
	st.Exhausted = d.Bool()
	st.Err = d.String()
	st.LastError = d.String()
	if err := d.Err(); err != nil {
		return nil, &SnapshotError{Reason: err.Error()}
	}
	if !d.Done() {
		return nil, &SnapshotError{Reason: "trailing bytes after payload"}
	}
	switch st.Phase {
	case PhaseRunning, PhaseDone, PhaseFailed, PhaseCanceled:
	default:
		return nil, &SnapshotError{Reason: fmt.Sprintf("unknown phase %q", st.Phase)}
	}
	if st.ID != st.Params.Key().String() {
		return nil, &SnapshotError{Reason: "id does not match params key"}
	}
	if st.Step < 0 || st.Step > st.Params.Candidates {
		return nil, &SnapshotError{Reason: fmt.Sprintf("cursor %d out of range [0,%d]", st.Step, st.Params.Candidates)}
	}
	if math.IsNaN(st.BestScore) || math.IsNaN(st.BaseScore) {
		return nil, &SnapshotError{Reason: "NaN score"}
	}
	return st, nil
}
