package jobs

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"hlpower/internal/budget"
	"hlpower/internal/recipe"
)

// TestJobsSoak is the acceptance harness for the durable job engine:
// a fleet of 100 jobs runs under probabilistic fault injection, the
// engine is drained mid-fleet (the SIGTERM path), and a fresh manager
// over the same store recovers the survivors. Asserted end to end:
//
//	(a) zero lost jobs — every submission reaches a terminal snapshot,
//	(b) zero duplicated jobs — each job completes exactly once across
//	    both manager lifetimes, and post-restart resubmissions attach
//	    instead of re-running,
//	(c) checkpoint-resume bit-identity — every job's terminal state is
//	    reflect.DeepEqual (hence Float64bits-identical scores) to an
//	    uninterrupted reference run with the same seeds and fault plan,
//	(d) draining leaves no goroutines behind.
func TestJobsSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	// The same deterministic chaos plan arms both runs: the engine
	// re-seeds it per candidate step, so an interrupted-and-resumed
	// fleet sees exactly the faults the reference fleet saw.
	plan := func() *budget.FaultPlan { return &budget.FaultPlan{Prob: 0.01, Seed: 4242} }

	const njobs = 100
	specs := []recipe.Spec{
		{Kind: recipe.KindCircuit, Circuit: "adder", Width: 4},
		{Kind: recipe.KindCircuit, Circuit: "comparator", Width: 4},
		{Kind: recipe.KindFSM, States: 5, Inputs: 2, Outputs: 2},
		{Kind: recipe.KindBus, Width: 8},
	}
	params := make([]Params, njobs)
	for i := range params {
		params[i] = Params{
			Spec:          specs[i%len(specs)],
			Seed:          int64(i)*7 + 1,
			Candidates:    12,
			EvalCycles:    96,
			VerifyCycles:  48,
			MaxRecipeLen:  3,
			EvalSteps:     20_000_000,
			CheckInterval: 64,
		}
	}

	submitAll := func(m *Manager) {
		t.Helper()
		for i, p := range params {
			if _, err := m.Submit(p); err != nil {
				t.Fatalf("submit job %d: %v", i, err)
			}
		}
	}
	waitFleet := func(m *Manager, want int64, phase string) {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		for {
			c := m.Counters()
			if c.Completed+c.Failed+c.Canceled >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: fleet stuck at %+v, want %d terminal", phase, c, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	loadState := func(s Store, id, phase string) *State {
		t.Helper()
		snap, ok, err := s.Load(id)
		if err != nil || !ok {
			t.Fatalf("%s: job %s has no snapshot (lost): ok=%v err=%v", phase, id, ok, err)
		}
		st, err := DecodeState(snap)
		if err != nil {
			t.Fatalf("%s: job %s snapshot undecodable: %v", phase, id, err)
		}
		return st
	}

	// --- Phase 1: uninterrupted reference fleet under the chaos plan.
	refStore := NewMemStore()
	mRef := New(Config{Workers: 4, QueueDepth: njobs + 8, CheckpointEvery: 4, Store: refStore, Plan: plan})
	submitAll(mRef)
	waitFleet(mRef, njobs, "reference")
	if c := mRef.Counters(); c.Completed != njobs || c.Failed != 0 || c.Canceled != 0 {
		t.Fatalf("reference fleet did not complete cleanly: %+v", c)
	}
	ref := make(map[string]*State, njobs)
	var refDegraded int64
	for _, p := range params {
		id := p.Key().String()
		st := loadState(refStore, id, "reference")
		if st.Phase != PhaseDone {
			t.Fatalf("reference job %s terminal phase %q, want done", id, st.Phase)
		}
		ref[id] = st
		refDegraded += st.Degraded
	}
	if refDegraded == 0 {
		t.Fatal("fault plan injected nothing: no candidate degraded across the reference fleet")
	}
	drainManager(t, mRef)

	// --- Phase 2: chaos fleet, drained mid-run. CheckpointEvery=1 so
	// every in-flight job hands off at a candidate boundary.
	store := NewMemStore()
	mA := New(Config{Workers: 4, QueueDepth: njobs + 8, CheckpointEvery: 1, Store: store, Plan: plan})
	submitAll(mA)
	trigger := time.Now().Add(60 * time.Second)
	for mA.Counters().Completed < 3 {
		if time.Now().After(trigger) {
			t.Fatalf("chaos fleet made no progress: %+v", mA.Counters())
		}
		time.Sleep(time.Millisecond)
	}
	drainManager(t, mA)
	ca := mA.Counters()
	if ca.Failed != 0 || ca.Canceled != 0 {
		t.Fatalf("chaos fleet failed/canceled before drain: %+v", ca)
	}
	doneA := ca.Completed
	if doneA >= njobs {
		t.Fatalf("drain landed after the whole fleet finished (%d/%d): no resume coverage", doneA, njobs)
	}

	// Nothing lost: every job has a decodable snapshot, and the drain
	// caught at least one job genuinely mid-search.
	var midSearch, interrupted int64
	for _, p := range params {
		st := loadState(store, p.Key().String(), "post-drain")
		switch st.Phase {
		case PhaseDone:
		case PhaseRunning:
			interrupted++
			if st.BaselineDone && st.Step > 0 && st.Step < st.Params.Candidates {
				midSearch++
			}
		default:
			t.Fatalf("post-drain job %s in unexpected phase %q", st.ID, st.Phase)
		}
	}
	if interrupted != njobs-doneA {
		t.Fatalf("post-drain snapshots: %d running, want %d (completed %d)", interrupted, njobs-doneA, doneA)
	}
	if midSearch == 0 {
		t.Fatalf("drain caught no job mid-search (%d interrupted, %d done)", interrupted, doneA)
	}
	t.Logf("drain interrupted %d jobs (%d mid-search), %d already done", interrupted, midSearch, doneA)

	// --- Phase 3: restart. A fresh manager over the same store recovers
	// the survivors; clients retrying every submission must attach, not
	// duplicate.
	mB := New(Config{Workers: 4, QueueDepth: njobs + 8, CheckpointEvery: 1, Store: store, Plan: plan})
	n, err := mB.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if int64(n) != interrupted {
		t.Fatalf("recovered %d jobs, want %d", n, interrupted)
	}
	submitAll(mB)
	waitFleet(mB, interrupted, "resumed")
	cb := mB.Counters()
	if cb.Failed != 0 || cb.Canceled != 0 {
		t.Fatalf("resumed fleet failed/canceled: %+v", cb)
	}
	if cb.Replayed != interrupted {
		t.Fatalf("resubmitting %d recovered jobs replayed %d", interrupted, cb.Replayed)
	}
	if cb.Submitted != doneA {
		t.Fatalf("resubmitting %d finished jobs attached %d terminal snapshots", doneA, cb.Submitted)
	}

	// --- Phase 4: zero duplicates, and bit-identity against reference.
	if doneA+cb.Completed != njobs {
		t.Fatalf("fleet completed %d+%d times across restarts, want exactly %d", doneA, cb.Completed, njobs)
	}
	for id, want := range ref {
		got := loadState(store, id, "final")
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("job %s diverged from uninterrupted reference:\n got %+v\nwant %+v", id, got, want)
		}
	}
	drainManager(t, mB)

	// --- Phase 5: no goroutines left behind.
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			w := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after drain: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:w])
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("soak complete: %d jobs, %d interrupted/resumed, ref degraded %d, counters %+v",
		njobs, interrupted, refDegraded, cb)
}
