package jobs

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"hlpower/internal/budget"
	"hlpower/internal/memo"
	"hlpower/internal/recipe"
)

// Fault-injection passes shared by the whole test binary. They are
// flag-gated so they act as deterministic degraded no-ops except in
// the tests that arm them; either way their presence in the circuit
// vocabulary is identical for every run of this binary, which keeps
// the bit-identity tests honest.
var (
	stallArmed atomic.Bool
	panicArmed atomic.Bool
)

func init() {
	recipe.Register(recipe.Pass{Name: "zz-inject-panic", Kind: recipe.KindCircuit,
		Apply: func(b *budget.Budget, d *recipe.Design, rng *rand.Rand) (*recipe.Design, error) {
			if !panicArmed.Load() {
				return nil, recipe.ErrNotApplicable
			}
			panic("injected pass fault")
		}})
	recipe.Register(recipe.Pass{Name: "zz-inject-stall", Kind: recipe.KindCircuit,
		Apply: func(b *budget.Budget, d *recipe.Design, rng *rand.Rand) (*recipe.Design, error) {
			if !stallArmed.Load() {
				return nil, recipe.ErrNotApplicable
			}
			for b.Err() == nil {
				time.Sleep(time.Millisecond)
			}
			return nil, b.Err()
		}})
}

func testParams(seed int64, candidates int) Params {
	return Params{
		Spec:          recipe.Spec{Kind: recipe.KindCircuit, Circuit: "adder", Width: 4},
		Seed:          seed,
		Candidates:    candidates,
		EvalCycles:    96,
		VerifyCycles:  64,
		MaxRecipeLen:  3,
		EvalSteps:     20_000_000,
		CheckInterval: 256,
	}
}

func drainManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func waitDone(t *testing.T, m *Manager, id string) *Status {
	t.Helper()
	ch, ok := m.Done(id)
	if !ok {
		t.Fatalf("job %s not attached", id)
	}
	select {
	case <-ch:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	st, ok := m.Get(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	return st
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := testParams(3, 17)
	st := &State{
		ID:           p.Key().String(),
		Params:       p,
		Step:         9,
		BaselineDone: true,
		BaseScore:    123.5,
		BestScore:    101.25,
		BestRecipe:   []string{"guard", "retime"},
		Evaluated:    9,
		Degraded:     2,
		CacheHits:    4,
		StepsUsed:    123456,
		Phase:        PhaseRunning,
		LastError:    "recipe pass x: not applicable",
	}
	got, err := DecodeState(EncodeState(st))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
}

func TestSnapshotFailsClosed(t *testing.T) {
	p := testParams(4, 5)
	good := EncodeState(&State{ID: p.Key().String(), Params: p, Phase: PhaseDone, BaselineDone: true})
	cases := map[string][]byte{
		"empty":        {},
		"short":        good[:10],
		"truncated":    good[:len(good)-3],
		"badmagic":     append([]byte("NOTMAGIC"), good[8:]...),
		"bitflip":      append(append([]byte(nil), good[:20]...), append([]byte{good[20] ^ 0x40}, good[21:]...)...),
		"trailing":     append(append([]byte(nil), good...), 0xFF),
		"crcgarbage":   append(append([]byte(nil), good[:8]...), append(make([]byte, 8), good[16:]...)...),
		"payloadempty": good[:16],
	}
	for name, snap := range cases {
		_, err := DecodeState(snap)
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Errorf("%s: got %v, want *SnapshotError", name, err)
		}
	}

	// Structurally valid encodings with inconsistent content must fail
	// closed too: mismatched id, out-of-range cursor, unknown phase.
	for name, st := range map[string]*State{
		"idmismatch": {ID: "deadbeef", Params: p, Phase: PhaseDone},
		"cursor":     {ID: p.Key().String(), Params: p, Phase: PhaseRunning, Step: p.Candidates + 1},
		"phase":      {ID: p.Key().String(), Params: p, Phase: "paused"},
		"nan":        {ID: p.Key().String(), Params: p, Phase: PhaseRunning, BestScore: math.NaN()},
	} {
		_, err := DecodeState(EncodeState(st))
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Errorf("%s: got %v, want *SnapshotError", name, err)
		}
	}
}

func TestFileStore(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load("missing0000"); err != nil || ok {
		t.Fatalf("missing id: ok=%v err=%v", ok, err)
	}
	if err := s.Save("../evil", []byte("x")); err == nil {
		t.Fatal("path traversal id accepted")
	}
	if err := s.Save("job-1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("job-1", []byte("hello2")); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := s.Load("job-1")
	if err != nil || !ok || string(snap) != "hello2" {
		t.Fatalf("load: %q ok=%v err=%v", snap, ok, err)
	}
	ids, err := s.List()
	if err != nil || !reflect.DeepEqual(ids, []string{"job-1"}) {
		t.Fatalf("list: %v err=%v", ids, err)
	}
	// Stray files are not listed as snapshots.
	os.WriteFile(filepath.Join(s.Dir, "readme.txt"), []byte("x"), 0o644)
	ids, _ = s.List()
	if !reflect.DeepEqual(ids, []string{"job-1"}) {
		t.Fatalf("list with stray file: %v", ids)
	}
	if err := s.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-1"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestJobCompletes(t *testing.T) {
	m := New(Config{Workers: 2})
	defer drainManager(t, m)
	p := testParams(1, 12)
	st, err := m.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, m, st.ID)
	if fin.Phase != PhaseDone {
		t.Fatalf("phase = %s (err %q), want done", fin.Phase, fin.Err)
	}
	if fin.Step != p.Candidates || fin.Evaluated != int64(p.Candidates) {
		t.Fatalf("step %d evaluated %d, want %d", fin.Step, fin.Evaluated, p.Candidates)
	}
	if fin.BaseScore <= 0 || fin.BestScore <= 0 || fin.BestScore > fin.BaseScore {
		t.Fatalf("scores base=%v best=%v", fin.BaseScore, fin.BestScore)
	}
	if fin.StepsUsed <= 0 {
		t.Fatalf("steps used %d", fin.StepsUsed)
	}
	c := m.Counters()
	if c.Completed != 1 || c.Running != 0 || c.Queued != 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestIdempotentSubmitAndTokenConflict(t *testing.T) {
	m := New(Config{Workers: 1})
	defer drainManager(t, m)
	p := testParams(2, 6)
	p.Token = "client-42"
	st1, err := m.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ID != st2.ID {
		t.Fatalf("idempotent resubmit: %s != %s", st1.ID, st2.ID)
	}
	if c := m.Counters(); c.Replayed != 1 {
		t.Fatalf("replayed = %d, want 1", c.Replayed)
	}
	conflict := testParams(99, 6)
	conflict.Token = "client-42"
	if _, err := m.Submit(conflict); err == nil {
		t.Fatal("token reuse for different params accepted")
	}
	waitDone(t, m, st1.ID)
	// After completion the token still routes to the finished job.
	st3, err := m.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID != st1.ID || st3.Phase != PhaseDone {
		t.Fatalf("post-completion resubmit: %+v", st3)
	}
}

func TestQueueFullSheds(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	defer drainManager(t, m)
	a, err := m.Submit(testParams(10, 500))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until a worker picks job A up so B occupies the only queue slot.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := m.Get(a.ID)
		if st.Phase == PhaseRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	b, err := m.Submit(testParams(11, 500))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(testParams(12, 500)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	if c := m.Counters(); c.Shed != 1 {
		t.Fatalf("shed = %d, want 1", c.Shed)
	}
	m.Cancel(a.ID)
	m.Cancel(b.ID)
	waitDone(t, m, a.ID)
	waitDone(t, m, b.ID)
}

func TestCancelRunningJob(t *testing.T) {
	m := New(Config{Workers: 1, CheckpointEvery: 1})
	defer drainManager(t, m)
	st, err := m.Submit(testParams(20, 2000))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, _ := m.Get(st.ID)
		if cur.Phase == PhaseRunning && cur.Step >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := m.Cancel(st.ID); !ok {
		t.Fatal("cancel: job unknown")
	}
	fin := waitDone(t, m, st.ID)
	if fin.Phase != PhaseCanceled {
		t.Fatalf("phase = %s, want canceled", fin.Phase)
	}
	if fin.Step >= 2000 {
		t.Fatal("cancel was not cooperative — job ran to completion")
	}
	// The terminal state is checkpointed.
	snap, ok, err := m.cfg.Store.Load(st.ID)
	if err != nil || !ok {
		t.Fatalf("terminal snapshot missing: ok=%v err=%v", ok, err)
	}
	dec, err := DecodeState(snap)
	if err != nil || dec.Phase != PhaseCanceled {
		t.Fatalf("terminal snapshot: %+v err=%v", dec, err)
	}
	if c := m.Counters(); c.Canceled != 1 {
		t.Fatalf("canceled counter = %d", c.Canceled)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 2})
	defer drainManager(t, m)
	a, err := m.Submit(testParams(30, 2000))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := m.Get(a.ID)
		if st.Phase == PhaseRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	b, err := m.Submit(testParams(31, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Get(b.ID); st.Phase != "queued" {
		t.Fatalf("job B phase = %s, want queued", st.Phase)
	}
	m.Cancel(b.ID)
	m.Cancel(a.ID)
	finB := waitDone(t, m, b.ID)
	if finB.Phase != PhaseCanceled {
		t.Fatalf("queued cancel: phase %s", finB.Phase)
	}
	if finB.Evaluated != 0 {
		t.Fatalf("queued cancel evaluated %d candidates", finB.Evaluated)
	}
	waitDone(t, m, a.ID)
}

// TestPanicPassDegradesCandidateOnly is the fault-isolation acceptance
// check: an injected panic inside one pass fails only that candidate —
// with a typed error surfaced through the degraded counters — and the
// job still completes with a usable best recipe.
func TestPanicPassDegradesCandidateOnly(t *testing.T) {
	panicArmed.Store(true)
	defer panicArmed.Store(false)
	m := New(Config{Workers: 1})
	defer drainManager(t, m)
	var fin *Status
	for seed := int64(0); seed < 8; seed++ {
		st, err := m.Submit(testParams(100+seed, 24))
		if err != nil {
			t.Fatal(err)
		}
		fin = waitDone(t, m, st.ID)
		if fin.Phase != PhaseDone {
			t.Fatalf("seed %d: phase %s (err %q)", seed, fin.Phase, fin.Err)
		}
		if fin.Degraded > 0 {
			break
		}
	}
	if fin.Degraded == 0 {
		t.Fatal("no candidate ever drew the panicking pass")
	}
	if fin.LastError == "" {
		t.Fatal("degraded candidate left no typed error detail")
	}
	if fin.Evaluated != int64(fin.Candidates) || fin.BestScore <= 0 {
		t.Fatalf("job did not complete past the panic: %+v", fin)
	}
}

// TestWatchdogFailsStalledPass drives evalCandidate directly against a
// pass that never returns: the watchdog must cancel it through the
// budget context and surface a typed *StallError, without hanging.
func TestWatchdogFailsStalledPass(t *testing.T) {
	stallArmed.Store(true)
	defer stallArmed.Store(false)
	m := New(Config{Workers: 1, StallTimeout: 50 * time.Millisecond})
	defer drainManager(t, m)
	p := testParams(40, 1)
	d, w, err := recipe.Build(p.Spec, p.Seed, p.EvalCycles, p.VerifyCycles)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j := &job{id: "stall-test", ctx: ctx, cancel: cancel}
	start := time.Now()
	r := m.evalCandidate(j, p, d, w, []string{"zz-inject-stall"}, nil)
	if !errors.Is(r.err, ErrStalled) {
		t.Fatalf("got %v, want ErrStalled", r.err)
	}
	var se *StallError
	if !errors.As(r.err, &se) || se.Timeout != 50*time.Millisecond {
		t.Fatalf("stall error not typed: %v", r.err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog took %v", elapsed)
	}
}

// TestStallCounterThroughEngine runs whole jobs with the stalling pass
// armed until one draws it, checking the engine records the stall and
// completes the job anyway.
func TestStallCounterThroughEngine(t *testing.T) {
	stallArmed.Store(true)
	defer stallArmed.Store(false)
	m := New(Config{Workers: 2, StallTimeout: 30 * time.Millisecond})
	defer drainManager(t, m)
	for seed := int64(0); seed < 8; seed++ {
		st, err := m.Submit(testParams(200+seed, 16))
		if err != nil {
			t.Fatal(err)
		}
		fin := waitDone(t, m, st.ID)
		if fin.Phase != PhaseDone {
			t.Fatalf("seed %d: phase %s (err %q)", seed, fin.Phase, fin.Err)
		}
		if m.Counters().Stalls > 0 {
			return
		}
	}
	t.Fatal("no candidate ever drew the stalling pass")
}

// TestCacheNeutrality checks the prefix cache is invisible to results:
// the same job run with and without a memo cache lands on bit-identical
// best score, recipe, and budget accounting.
func TestCacheNeutrality(t *testing.T) {
	p := testParams(7, 40)

	plain := New(Config{Workers: 1})
	defer drainManager(t, plain)
	st, err := plain.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	ref := waitDone(t, plain, st.ID)

	cacheObj := memo.New(memo.Options{MaxBytes: 1 << 20})
	cached := New(Config{Workers: 1, Cache: func() *memo.Cache { return cacheObj }})
	defer drainManager(t, cached)
	st2, err := cached.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, cached, st2.ID)

	if math.Float64bits(got.BestScore) != math.Float64bits(ref.BestScore) {
		t.Fatalf("best score %v != %v", got.BestScore, ref.BestScore)
	}
	if !reflect.DeepEqual(got.BestRecipe, ref.BestRecipe) {
		t.Fatalf("best recipe %v != %v", got.BestRecipe, ref.BestRecipe)
	}
	if got.StepsUsed != ref.StepsUsed {
		t.Fatalf("steps used %d != %d (cache warmth leaked into accounting)", got.StepsUsed, ref.StepsUsed)
	}
	if got.CacheHits == 0 {
		t.Fatal("cached run recorded no prefix hits")
	}
}

// TestDrainResumeBitIdentity is the durability acceptance check: a job
// drained mid-search and resumed by a fresh manager over the same store
// converges to a Float64bits-identical best recipe and score versus an
// uninterrupted run of the same params.
func TestDrainResumeBitIdentity(t *testing.T) {
	for _, candidates := range []int{120, 600, 2000} {
		p := testParams(8, candidates)

		// Uninterrupted reference.
		refM := New(Config{Workers: 1})
		st, err := refM.Submit(p)
		if err != nil {
			t.Fatal(err)
		}
		ref := waitDone(t, refM, st.ID)
		drainManager(t, refM)
		if ref.Phase != PhaseDone {
			t.Fatalf("reference phase %s (err %q)", ref.Phase, ref.Err)
		}

		// Interrupted run: drain mid-search, then resume on a fresh
		// manager sharing the store (the "restarted node").
		store := NewMemStore()
		m1 := New(Config{Workers: 1, CheckpointEvery: 1, Store: store})
		if _, err := m1.Submit(p); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			cur, _ := m1.Get(st.ID)
			if cur.Step >= 3 || cur.Phase != PhaseRunning && cur.Phase != "queued" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("job never progressed")
			}
		}
		drainManager(t, m1)

		snap, ok, err := store.Load(st.ID)
		if err != nil || !ok {
			t.Fatalf("no checkpoint after drain: ok=%v err=%v", ok, err)
		}
		mid, err := DecodeState(snap)
		if err != nil {
			t.Fatalf("drain checkpoint undecodable: %v", err)
		}
		if mid.Phase != PhaseRunning || mid.Step == 0 || mid.Step >= candidates {
			// The whole job fit before the drain landed; try a longer one.
			continue
		}

		m2 := New(Config{Workers: 1, Store: store})
		n, err := m2.Recover()
		if err != nil || n != 1 {
			t.Fatalf("recover: n=%d err=%v", n, err)
		}
		fin := waitDone(t, m2, st.ID)
		drainManager(t, m2)
		if fin.Phase != PhaseDone {
			t.Fatalf("resumed phase %s (err %q)", fin.Phase, fin.Err)
		}
		if !fin.Resumed {
			t.Fatal("resumed run not flagged as resumed")
		}

		if math.Float64bits(fin.BestScore) != math.Float64bits(ref.BestScore) {
			t.Fatalf("best score %v != reference %v", fin.BestScore, ref.BestScore)
		}
		if !reflect.DeepEqual(fin.BestRecipe, ref.BestRecipe) {
			t.Fatalf("best recipe %v != reference %v", fin.BestRecipe, ref.BestRecipe)
		}
		if fin.BaseScore != ref.BaseScore || fin.Step != ref.Step || fin.Evaluated != ref.Evaluated {
			t.Fatalf("resumed trajectory diverged: %+v vs %+v", fin, ref)
		}
		if fin.StepsUsed != ref.StepsUsed {
			t.Fatalf("steps used %d != reference %d", fin.StepsUsed, ref.StepsUsed)
		}
		return
	}
	t.Fatal("drain never landed mid-search even on the largest job")
}

// TestResumeFromFileStoreAcrossManagers covers the cross-process shape
// of resume: file-backed snapshots, fresh manager, Recover.
func TestResumeFromFileStoreAcrossManagers(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(9, 2000)
	m1 := New(Config{Workers: 1, CheckpointEvery: 1, Store: store})
	st, err := m1.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, _ := m1.Get(st.ID)
		if cur.Step >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	drainManager(t, m1)

	m2 := New(Config{Workers: 1, Store: store})
	defer drainManager(t, m2)
	n, err := m2.Recover()
	if err != nil || n != 1 {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}
	// Idempotent resubmission while the recovered job runs attaches to it.
	st2, err := m2.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("resubmit made a new job: %s != %s", st2.ID, st.ID)
	}
	m2.Cancel(st.ID)
	fin := waitDone(t, m2, st.ID)
	if fin.Phase != PhaseCanceled {
		t.Fatalf("phase %s", fin.Phase)
	}
}

func TestRecoverSkipsCorruptAndTerminal(t *testing.T) {
	store := NewMemStore()
	p := testParams(50, 4)
	doneState := &State{ID: p.Key().String(), Params: p, Phase: PhaseDone, BaselineDone: true, Step: 4}
	store.Save(doneState.ID, EncodeState(doneState))
	store.Save("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", []byte("garbage snapshot"))

	m := New(Config{Workers: 1, Store: store})
	defer drainManager(t, m)
	n, err := m.Recover()
	if n != 0 {
		t.Fatalf("recovered %d jobs from terminal+corrupt store", n)
	}
	var se *SnapshotError
	if !errors.As(err, &se) {
		t.Fatalf("corrupt snapshot not reported: %v", err)
	}
	// The terminal job is still queryable through the store.
	st, ok := m.Get(doneState.ID)
	if !ok || st.Phase != PhaseDone {
		t.Fatalf("terminal snapshot not served: %+v ok=%v", st, ok)
	}
}

func TestSubmitAttachesTerminalSnapshot(t *testing.T) {
	store := NewMemStore()
	p := testParams(60, 4)
	fin := &State{ID: p.Key().String(), Params: p, Phase: PhaseDone, BaselineDone: true,
		Step: 4, Evaluated: 4, BaseScore: 10, BestScore: 9, BestRecipe: []string{"guard"}}
	store.Save(fin.ID, EncodeState(fin))

	m := New(Config{Workers: 1, Store: store})
	defer drainManager(t, m)
	st, err := m.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != PhaseDone || st.Evaluated != 4 || st.BestScore != 9 {
		t.Fatalf("terminal attach: %+v", st)
	}
	ch, ok := m.Done(st.ID)
	if !ok {
		t.Fatal("no done channel")
	}
	select {
	case <-ch:
	default:
		t.Fatal("terminal job's done channel not closed")
	}
}

func TestSubmitWhileDrainingRejected(t *testing.T) {
	m := New(Config{Workers: 1})
	drainManager(t, m)
	if _, err := m.Submit(testParams(70, 4)); !errors.Is(err, ErrDraining) {
		t.Fatalf("got %v, want ErrDraining", err)
	}
}

func TestSubmitRejectsBadParams(t *testing.T) {
	m := New(Config{Workers: 1})
	defer drainManager(t, m)
	bad := testParams(80, 4)
	bad.Spec.Circuit = "alu"
	if _, err := m.Submit(bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
	unnorm := testParams(81, 4)
	unnorm.EvalSteps = 0
	if _, err := m.Submit(unnorm); err == nil {
		t.Fatal("unnormalized params accepted")
	}
}
