// Package jobs is the durable optimization-job engine behind
// /v1/optimize: a bounded pool of workers runs deterministic seeded
// recipe searches (internal/recipe) whose entire state checkpoints to
// a pluggable Store. The design invariant is that (Params, State) is
// sufficient to continue a search exactly: a drained or killed node
// resumes from its last checkpoint and converges to a Float64bits-
// identical best recipe and score versus an uninterrupted run, because
// every random draw is a pure function of checkpointed values and
// every candidate evaluation runs under a fresh fixed-size budget.
package jobs

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/memo"
	"hlpower/internal/recipe"
)

// Typed submission failures.
var (
	// ErrQueueFull sheds submissions past QueueDepth (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects submissions during graceful drain (HTTP 503).
	ErrDraining = errors.New("jobs: draining")
)

// Config tunes a Manager. Zero values take defaults.
type Config struct {
	Workers         int           // concurrent jobs (default 2)
	QueueDepth      int           // queued-but-unstarted jobs before shedding (default 16)
	CheckpointEvery int           // candidates between periodic checkpoints (default 8)
	StallTimeout    time.Duration // watchdog limit per candidate (default 30s)

	Store Store // checkpoint store (default in-memory)

	// Cache, when set, returns the memo cache used for recipe-prefix
	// sharing (nil disables, mirroring the serving layer's fault-plan
	// honesty gate). Plan, when set, returns the fault-injection plan
	// to arm candidate budgets with.
	Cache func() *memo.Cache
	Plan  func() *budget.FaultPlan
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.Store == nil {
		c.Store = NewMemStore()
	}
	return c
}

// Counters is a point-in-time snapshot of the engine's gauges and
// totals for /v1/stats.
type Counters struct {
	Submitted    int64 `json:"submitted"`
	Replayed     int64 `json:"replayed"` // idempotent resubmissions answered from an existing job
	Resumed      int64 `json:"resumed"`  // jobs continued from a checkpoint
	Completed    int64 `json:"completed"`
	Failed       int64 `json:"failed"`
	Canceled     int64 `json:"canceled"`
	Checkpointed int64 `json:"checkpointed"` // snapshots written
	Stalls       int64 `json:"stalls"`
	Shed         int64 `json:"shed"` // submissions rejected with ErrQueueFull
	SaveErrors   int64 `json:"save_errors"`
	Queued       int64 `json:"queued"`  // gauge
	Running      int64 `json:"running"` // gauge
}

// Status is the wire-ready view of one job.
type Status struct {
	ID         string   `json:"id"`
	Token      string   `json:"token,omitempty"`
	Phase      string   `json:"phase"` // queued | running | done | failed | canceled
	Step       int      `json:"step"`
	Candidates int      `json:"candidates"`
	BaseScore  float64  `json:"base_score"`
	BestScore  float64  `json:"best_score"`
	BestRecipe []string `json:"best_recipe"`
	Evaluated  int64    `json:"evaluated"`
	Degraded   int64    `json:"degraded"`
	CacheHits  int64    `json:"cache_hits"`
	StepsUsed  int64    `json:"steps_used"`
	Resumed    bool     `json:"resumed"`
	Exhausted  bool     `json:"exhausted,omitempty"`
	Err        string   `json:"error,omitempty"`
	LastError  string   `json:"last_error,omitempty"`
}

type job struct {
	id      string
	mu      sync.Mutex
	st      *State
	started bool
	resumed bool
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{} // closed when the job reaches a terminal phase or drains
}

// Manager runs and supervises jobs.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	jobs   map[string]*job
	tokens map[string]string // idempotency token -> job id

	queue     chan *job
	drainOnce sync.Once
	drainCh   chan struct{}
	draining  atomic.Bool
	wg        sync.WaitGroup

	submitted, replayed, resumed           atomic.Int64
	completed, failed, canceled            atomic.Int64
	checkpointed, stalls, shed, saveErrors atomic.Int64
	queued, running                        atomic.Int64
}

// New starts a Manager with cfg.Workers worker goroutines.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:     cfg,
		jobs:    map[string]*job{},
		tokens:  map[string]string{},
		queue:   make(chan *job, cfg.QueueDepth),
		drainCh: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

func (m *Manager) cache() *memo.Cache {
	if m.cfg.Cache == nil {
		return nil
	}
	return m.cfg.Cache()
}

func (m *Manager) plan() *budget.FaultPlan {
	if m.cfg.Plan == nil {
		return nil
	}
	return m.cfg.Plan()
}

// Counters snapshots the engine counters.
func (m *Manager) Counters() Counters {
	return Counters{
		Submitted:    m.submitted.Load(),
		Replayed:     m.replayed.Load(),
		Resumed:      m.resumed.Load(),
		Completed:    m.completed.Load(),
		Failed:       m.failed.Load(),
		Canceled:     m.canceled.Load(),
		Checkpointed: m.checkpointed.Load(),
		Stalls:       m.stalls.Load(),
		Shed:         m.shed.Load(),
		SaveErrors:   m.saveErrors.Load(),
		Queued:       m.queued.Load(),
		Running:      m.running.Load(),
	}
}

// Submit starts (or idempotently re-attaches to) the job named by the
// params' content key. The same token + params always lands on the
// same job; a token reused for different work is a typed input error.
// A matching checkpoint in the store resumes instead of restarting.
func (m *Manager) Submit(p Params) (*Status, error) {
	if err := p.Spec.Validate(); err != nil {
		return nil, err
	}
	if p.Candidates < 1 || p.EvalCycles < 2 || p.VerifyCycles < 2 || p.EvalSteps < 1 {
		return nil, hlerr.Errorf("jobs.submit", "params not normalized")
	}
	if m.draining.Load() {
		return nil, ErrDraining
	}
	id := p.Key().String()

	m.mu.Lock()
	if prev, ok := m.tokens[p.Token]; ok && p.Token != "" && prev != id {
		m.mu.Unlock()
		return nil, hlerr.Errorf("jobs.submit", "token %q already used by job %s", p.Token, prev)
	}
	if j, ok := m.jobs[id]; ok {
		m.mu.Unlock()
		m.replayed.Add(1)
		return m.status(j), nil
	}

	// Not attached: a checkpoint may exist (prior process, or a dead
	// ring peer sharing the store).
	st := &State{ID: id, Params: p, Phase: PhaseRunning, BestScore: math.Inf(1)}
	resumed := false
	if snap, ok, err := m.cfg.Store.Load(id); err == nil && ok {
		if dec, derr := DecodeState(snap); derr == nil {
			st = dec
			resumed = true
		} else {
			// Fail closed: never resume questionable state. The job
			// restarts from scratch under the same identity and the
			// first checkpoint overwrites the bad snapshot.
			m.saveErrors.Add(1)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{id: id, st: st, resumed: resumed, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	if st.Phase != PhaseRunning {
		// Terminal snapshot: attach as finished, nothing to run.
		close(j.done)
		m.jobs[id] = j
		if p.Token != "" {
			m.tokens[p.Token] = id
		}
		m.mu.Unlock()
		m.submitted.Add(1)
		return m.status(j), nil
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		m.shed.Add(1)
		return nil, ErrQueueFull
	}
	m.jobs[id] = j
	if p.Token != "" {
		m.tokens[p.Token] = id
	}
	m.mu.Unlock()

	m.submitted.Add(1)
	if resumed {
		m.resumed.Add(1)
	}
	m.queued.Add(1)
	// Persist the initial state so even a submission that never gets a
	// worker slot before a crash is recoverable.
	if !resumed {
		m.checkpoint(j)
	}
	return m.status(j), nil
}

// Get returns the job's status: a live attached job if the manager
// knows it, else a snapshot from the store (e.g. after a restart, or a
// job checkpointed by a dead peer against a shared store).
func (m *Manager) Get(id string) (*Status, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok {
		return m.status(j), true
	}
	snap, ok, err := m.cfg.Store.Load(id)
	if err != nil || !ok {
		return nil, false
	}
	st, err := DecodeState(snap)
	if err != nil {
		return nil, false
	}
	s := statusOf(st, false, false)
	return s, true
}

// Cancel requests cooperative cancellation: the job's context cancels
// every in-flight candidate budget, the search loop observes it at the
// next step boundary, checkpoints the terminal state, and completes as
// canceled. Canceling an already-terminal job is a no-op.
func (m *Manager) Cancel(id string) (*Status, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	if j.st.Phase == PhaseRunning && !j.started {
		// Not yet picked up by a worker: cancel immediately; the worker
		// will observe the terminal phase and skip the run.
		j.st.Phase = PhaseCanceled
	}
	j.mu.Unlock()
	j.cancel()
	return m.status(j), true
}

// Done exposes the job's completion channel for tests and pollers.
func (m *Manager) Done(id string) (<-chan struct{}, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.done, true
}

// Recover re-enqueues every non-terminal checkpoint in the store —
// called once at startup so a restarted node picks its jobs back up
// without waiting for clients to resubmit. Undecodable snapshots are
// skipped (fail closed) and reported via the first error.
func (m *Manager) Recover() (int, error) {
	ids, err := m.cfg.Store.List()
	if err != nil {
		return 0, err
	}
	n := 0
	var firstErr error
	for _, id := range ids {
		snap, ok, err := m.cfg.Store.Load(id)
		if err != nil || !ok {
			continue
		}
		st, err := DecodeState(snap)
		if err != nil {
			m.saveErrors.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if st.Phase != PhaseRunning {
			continue
		}
		m.mu.Lock()
		if _, attached := m.jobs[st.ID]; attached {
			m.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		j := &job{id: st.ID, st: st, resumed: true, ctx: ctx, cancel: cancel, done: make(chan struct{})}
		select {
		case m.queue <- j:
			m.jobs[st.ID] = j
			if st.Params.Token != "" {
				m.tokens[st.Params.Token] = st.ID
			}
			m.mu.Unlock()
			m.queued.Add(1)
			m.resumed.Add(1)
			n++
		default:
			m.mu.Unlock()
			cancel()
			// Queue full: leave the snapshot for a later Recover or an
			// idempotent resubmission.
		}
	}
	return n, firstErr
}

// Drain checkpoints every running job at its next step boundary and
// stops the workers. Queued jobs already have their initial snapshot,
// so nothing is lost; nothing is marked canceled. After Drain returns
// the store holds a resumable snapshot of every incomplete job.
func (m *Manager) Drain(ctx context.Context) error {
	m.draining.Store(true)
	m.drainOnce.Do(func() { close(m.drainCh) })
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.drainCh:
			return
		default:
		}
		select {
		case <-m.drainCh:
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// checkpoint persists the job's current state. Save failures are
// counted but do not fail the job: durability degrades, correctness
// does not.
func (m *Manager) checkpoint(j *job) {
	j.mu.Lock()
	snap := EncodeState(j.st)
	j.mu.Unlock()
	if err := m.cfg.Store.Save(j.id, snap); err != nil {
		m.saveErrors.Add(1)
		return
	}
	m.checkpointed.Add(1)
}

func (m *Manager) status(j *job) *Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return statusOf(j.st, j.started, j.resumed)
}

func statusOf(st *State, started, resumed bool) *Status {
	phase := st.Phase
	if phase == PhaseRunning && !started {
		phase = "queued"
	}
	best := st.BestScore
	if math.IsInf(best, 1) {
		best = 0
	}
	return &Status{
		ID:         st.ID,
		Token:      st.Params.Token,
		Phase:      phase,
		Step:       st.Step,
		Candidates: st.Params.Candidates,
		BaseScore:  st.BaseScore,
		BestScore:  best,
		BestRecipe: append([]string(nil), st.BestRecipe...),
		Evaluated:  st.Evaluated,
		Degraded:   st.Degraded,
		CacheHits:  st.CacheHits,
		StepsUsed:  st.StepsUsed,
		Resumed:    resumed,
		Exhausted:  st.Exhausted,
		Err:        st.Err,
		LastError:  st.LastError,
	}
}

// finalize records a terminal phase, checkpoints it, and releases
// pollers.
func (m *Manager) finalize(j *job, phase, errMsg string) {
	j.mu.Lock()
	j.st.Phase = phase
	if errMsg != "" {
		j.st.Err = errMsg
	}
	j.mu.Unlock()
	m.checkpoint(j)
	switch phase {
	case PhaseDone:
		m.completed.Add(1)
	case PhaseFailed:
		m.failed.Add(1)
	case PhaseCanceled:
		m.canceled.Add(1)
	}
	close(j.done)
}

// run executes one job's search loop from wherever its state points.
func (m *Manager) run(j *job) {
	m.queued.Add(-1)
	j.mu.Lock()
	if j.st.Phase != PhaseRunning {
		// Canceled while queued (or attached terminal state).
		phase := j.st.Phase
		j.mu.Unlock()
		m.running.Add(1)
		defer m.running.Add(-1)
		m.finalize(j, phase, "")
		return
	}
	j.started = true
	p := j.st.Params
	j.mu.Unlock()

	m.running.Add(1)
	defer m.running.Add(-1)

	design, workload, err := recipe.Build(p.Spec, p.Seed, p.EvalCycles, p.VerifyCycles)
	if err != nil {
		m.finalize(j, PhaseFailed, err.Error())
		return
	}
	vocab := recipe.Vocabulary(p.Spec.Kind)
	if len(vocab) == 0 {
		m.finalize(j, PhaseFailed, "no passes registered for kind "+p.Spec.Kind)
		return
	}

	// Baseline: the empty recipe's deterministic score seeds the
	// best-so-far memory. A baseline that cannot be scored fails the
	// job — there is nothing meaningful to search.
	j.mu.Lock()
	if !j.st.BaselineDone {
		j.mu.Unlock()
		r := m.evaluate(j.ctx, p, design, workload, nil, nil)
		if r.err != nil {
			m.finalize(j, PhaseFailed, "baseline: "+r.err.Error())
			return
		}
		j.mu.Lock()
		j.st.BaselineDone = true
		j.st.BaseScore = r.score
		j.st.BestScore = r.score
		j.st.BestRecipe = nil
		j.st.StepsUsed += r.used
		j.mu.Unlock()
		m.checkpoint(j)
	} else {
		j.mu.Unlock()
	}

	for {
		j.mu.Lock()
		st := j.st
		if st.Step >= p.Candidates {
			j.mu.Unlock()
			break
		}
		if j.ctx.Err() != nil {
			j.mu.Unlock()
			m.finalize(j, PhaseCanceled, "")
			return
		}
		if m.draining.Load() {
			// Leave phase running: the checkpoint is the hand-off.
			j.mu.Unlock()
			m.checkpoint(j)
			close(j.done)
			return
		}
		if p.MaxTotalSteps > 0 && st.StepsUsed >= p.MaxTotalSteps {
			st.Exhausted = true
			j.mu.Unlock()
			break
		}
		step := st.Step
		best := append([]string(nil), st.BestRecipe...)
		j.mu.Unlock()

		names := candidateRecipe(p.Seed, step, best, vocab, p.MaxRecipeLen)

		var plan *budget.FaultPlan
		if pl := m.plan(); pl != nil {
			cp := *pl
			if cp.Prob > 0 {
				// Vary the trip point per candidate, deterministically.
				cp.Seed += int64(step) + 1
			}
			plan = &cp
		}
		r := m.evalCandidate(j, p, design, workload, names, plan)
		if errors.Is(r.err, ErrStalled) {
			m.stalls.Add(1)
		}

		j.mu.Lock()
		st.Evaluated++
		st.StepsUsed += r.used
		st.CacheHits += r.hits
		if r.err != nil {
			if j.ctx.Err() != nil {
				// Cancellation, not a candidate failure.
				j.mu.Unlock()
				m.finalize(j, PhaseCanceled, "")
				return
			}
			st.Degraded++
			st.LastError = r.err.Error()
		} else if r.score < st.BestScore {
			st.BestScore = r.score
			st.BestRecipe = append([]string(nil), names...)
		}
		st.Step++
		every := st.Step%m.cfg.CheckpointEvery == 0
		j.mu.Unlock()
		if every {
			m.checkpoint(j)
		}
	}
	m.finalize(j, PhaseDone, "")
}
