package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"hlpower/internal/service"
)

// FuzzRecipeWire fuzzes the two wire formats of the job engine: the
// /v1/optimize request body and the checkpoint-snapshot envelope.
// Invariants: neither decoder ever panics; a corrupt or truncated
// snapshot fails closed with a typed *SnapshotError; anything
// DecodeState does accept survives an encode/decode round trip
// byte-identically (the canonical encoding admits exactly one
// representation per state, so a resumed node can never "almost"
// agree with the checkpoint it wrote).
func FuzzRecipeWire(f *testing.F) {
	p := testParams(11, 9)
	running := &State{ID: p.Key().String(), Params: p, Phase: PhaseRunning,
		BaselineDone: true, BaseScore: 12.5, BestScore: 11, BestRecipe: []string{"guard", "retime"},
		Step: 4, Evaluated: 4, StepsUsed: 5000}
	f.Add(EncodeState(running))
	f.Add(EncodeState(&State{ID: p.Key().String(), Params: p, Phase: PhaseDone}))
	f.Add([]byte(snapMagic))
	f.Add([]byte(`{"kind":"circuit","circuit":"adder","width":4,"seed":1}`))
	f.Add([]byte(`{"kind":"fsm","states":6,"inputs":2,"outputs":2,"seed":-3,"candidates":10}`))
	f.Add([]byte(`{"kind":"bus","width":12,"token":"abc"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(data)
		if err != nil {
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("snapshot decode failure not typed: %v", err)
			}
		} else {
			re := EncodeState(st)
			if !bytes.Equal(re, data) {
				t.Fatalf("accepted snapshot is not canonical:\n in %x\nout %x", data, re)
			}
			st2, err := DecodeState(re)
			if err != nil {
				t.Fatalf("round trip rejected: %v", err)
			}
			if !reflect.DeepEqual(st, st2) {
				t.Fatalf("round trip changed state: %+v vs %+v", st, st2)
			}
		}

		var req service.OptimizeRequest
		if json.Unmarshal(data, &req) != nil {
			return
		}
		req.Normalize()
		if req.Validate() != nil {
			return
		}
		// A valid request must map onto params the engine accepts, with a
		// stable content identity.
		pr := Params{
			Spec: req.Spec(), Token: req.Token, Seed: req.Seed,
			Candidates: req.Candidates, EvalCycles: req.EvalCycles,
			VerifyCycles: req.VerifyCycles, MaxRecipeLen: req.MaxRecipeLen,
			EvalSteps: 1 << 20, CheckInterval: 256,
		}
		if err := pr.Spec.Validate(); err != nil {
			t.Fatalf("validated request has invalid spec: %v", err)
		}
		if pr.Key() != pr.Key() {
			t.Fatal("params key not deterministic")
		}
	})
}
