package fsm

import (
	"math"
	"math/rand"
	"testing"

	"hlpower/internal/bitutil"
	"hlpower/internal/logic"
	"hlpower/internal/sim"
)

// counterFSM is a 4-state cycle that advances on input 1 and holds on 0;
// output is the state index.
func counterFSM() *FSM {
	f := &FSM{NumInputs: 1, NumOutputs: 2, NumStates: 4,
		Next: make([][]int, 4), Out: make([][]uint64, 4)}
	for s := 0; s < 4; s++ {
		f.Next[s] = []int{s, (s + 1) % 4}
		f.Out[s] = []uint64{uint64(s), uint64(s)}
	}
	return f
}

func TestValidate(t *testing.T) {
	f := counterFSM()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := counterFSM()
	bad.Next[0][0] = 99
	if err := bad.Validate(); err == nil {
		t.Error("expected validation failure for out-of-range next state")
	}
}

func TestRandomFSMValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		f := Random(5+rng.Intn(10), 1+rng.Intn(3), 1+rng.Intn(4), 0.5, rng)
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimulate(t *testing.T) {
	f := counterFSM()
	states, outs := f.Simulate([]int{1, 1, 1, 1, 0})
	wantStates := []int{0, 1, 2, 3, 0, 0}
	for i := range wantStates {
		if states[i] != wantStates[i] {
			t.Errorf("state[%d] = %d, want %d", i, states[i], wantStates[i])
		}
	}
	if outs[2] != 2 {
		t.Errorf("out[2] = %d, want 2", outs[2])
	}
}

func TestStationaryCounter(t *testing.T) {
	// With always-advance inputs the cycle is symmetric: pi = 1/4 each.
	f := counterFSM()
	pi, err := f.StationaryDistribution([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for s, p := range pi {
		if math.Abs(p-0.25) > 1e-3 {
			t.Errorf("pi[%d] = %v, want 0.25", s, p)
		}
	}
}

func TestTransitionProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := Random(8, 2, 2, 0.4, rng)
	p, err := f.TransitionProbabilities(nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range p {
		for _, v := range p[i] {
			sum += v
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("transition probabilities sum to %v, want 1", sum)
	}
}

func TestEncodingsValid(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 16} {
		if err := BinaryEncoding(n).Validate(n); err != nil {
			t.Errorf("binary(%d): %v", n, err)
		}
		if err := GrayEncoding(n).Validate(n); err != nil {
			t.Errorf("gray(%d): %v", n, err)
		}
		if err := OneHotEncoding(n).Validate(n); err != nil {
			t.Errorf("onehot(%d): %v", n, err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	re, err := RandomEncoding(10, 5, rng)
	if err != nil {
		t.Fatalf("random: %v", err)
	}
	if err := re.Validate(10); err != nil {
		t.Errorf("random: %v", err)
	}
	if _, err := RandomEncoding(10, 3, rng); err == nil {
		t.Error("width 3 cannot encode 10 states; want error")
	}
}

func TestEncodingValidateRejects(t *testing.T) {
	e := &Encoding{Width: 2, Codes: []uint64{0, 0, 1}}
	if err := e.Validate(3); err == nil {
		t.Error("duplicate codes must be rejected")
	}
	e = &Encoding{Width: 1, Codes: []uint64{0, 1, 2}}
	if err := e.Validate(3); err == nil {
		t.Error("overflow codes must be rejected")
	}
}

func TestWeightedHammingCounterGray(t *testing.T) {
	// On the pure cycle, Gray encoding gives exactly 1 bit flip per
	// transition except the wraparound... for 4 states Gray wraps at
	// distance 1 too, so the weighted cost under always-advance is 1.
	f := counterFSM()
	p, err := f.TransitionProbabilities([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	gray := GrayEncoding(4)
	cost := WeightedHamming(gray, p)
	if math.Abs(cost-1.0) > 1e-3 {
		t.Errorf("gray cycle cost = %v, want 1", cost)
	}
	binary := BinaryEncoding(4)
	bcost := WeightedHamming(binary, p)
	if bcost <= cost {
		t.Errorf("binary cost %v should exceed gray %v on a cycle", bcost, cost)
	}
}

func TestLowPowerEncodingBeatsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := Random(12, 2, 2, 0.2, rng)
	p, err := f.TransitionProbabilities(nil)
	if err != nil {
		t.Fatal(err)
	}
	lp := LowPowerEncoding(f, p, 6000, rng)
	if err := lp.Validate(f.NumStates); err != nil {
		t.Fatal(err)
	}
	if lp.Codes[0] != 0 {
		t.Error("low-power encoding must preserve reset code 0")
	}
	lpCost := WeightedHamming(lp, p)
	rnd, err := RandomEncoding(f.NumStates, lp.Width, rng)
	if err != nil {
		t.Fatal(err)
	}
	rndCost := WeightedHamming(rnd, p)
	bin := WeightedHamming(BinaryEncoding(f.NumStates), p)
	if lpCost > rndCost || lpCost > bin {
		t.Errorf("low-power cost %v should not exceed random %v or binary %v", lpCost, rndCost, bin)
	}
}

func TestSynthesizeMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		f := Random(6, 2, 3, 0.5, rng)
		for _, enc := range []*Encoding{BinaryEncoding(6), GrayEncoding(6), OneHotEncoding(6)} {
			net, err := Synthesize(f, enc)
			if err != nil {
				t.Fatal(err)
			}
			// Drive both with the same random symbol stream.
			symbols := make([]int, 100)
			for i := range symbols {
				symbols[i] = rng.Intn(f.NumSymbols())
			}
			_, wantOut := f.Simulate(symbols)
			prov := func(c int) []bool { return bitutil.ToBits(uint64(symbols[c]), f.NumInputs) }
			res, err := sim.Run(net, prov, len(symbols), sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for c := range wantOut {
				got := bitutil.FromBits(res.Outputs[c])
				if got != wantOut[c] {
					t.Fatalf("trial %d enc width %d cycle %d: out %d, want %d",
						trial, enc.Width, c, got, wantOut[c])
				}
			}
		}
	}
}

func TestMinimizeCollapsesDuplicates(t *testing.T) {
	// Duplicate the counter's states: 8 states where s and s+4 behave
	// identically; minimization must find 4.
	f := &FSM{NumInputs: 1, NumOutputs: 2, NumStates: 8,
		Next: make([][]int, 8), Out: make([][]uint64, 8)}
	for s := 0; s < 8; s++ {
		base := s % 4
		f.Next[s] = []int{s % 4, (base+1)%4 + 4} // hold goes low copy, advance goes high copy
		f.Out[s] = []uint64{uint64(base), uint64(base)}
	}
	min, mapping := Minimize(f)
	if min.NumStates != 4 {
		t.Fatalf("minimized to %d states, want 4", min.NumStates)
	}
	for s := 0; s < 8; s++ {
		if mapping[s] != mapping[s%4] {
			t.Errorf("states %d and %d should merge", s, s%4)
		}
	}
	// Behaviour must be preserved.
	symbols := []int{1, 0, 1, 1, 1, 0, 1, 1, 1}
	_, a := f.Simulate(symbols)
	_, b := min.Simulate(symbols)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("minimized machine diverges at step %d", i)
		}
	}
}

func TestMinimizeAlreadyMinimal(t *testing.T) {
	f := counterFSM()
	min, _ := Minimize(f)
	if min.NumStates != 4 {
		t.Errorf("counter should stay at 4 states, got %d", min.NumStates)
	}
}

func TestSymbolicReachabilityMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5; trial++ {
		f := Random(6, 1, 1, 0.3, rng)
		enc := BinaryEncoding(f.NumStates)
		rel := BuildRelation(f, enc)
		reached := rel.Reachable()
		explicit := f.ReachableStates()
		// Check every state code's membership.
		for s := 0; s < f.NumStates; s++ {
			asg := make([]bool, rel.M.NumVars())
			for i, v := range rel.StateVars {
				asg[v] = enc.Codes[s]>>uint(i)&1 == 1
			}
			inSet := rel.M.Eval(reached, asg)
			if inSet != explicit[s] {
				t.Errorf("trial %d: state %d symbolic=%v explicit=%v", trial, s, inSet, explicit[s])
			}
		}
	}
}

func TestCountTransitions(t *testing.T) {
	f := counterFSM()
	states, _ := f.Simulate([]int{1, 1, 0})
	c := f.CountTransitions(states)
	if c[0][1] != 1 || c[1][2] != 1 || c[2][2] != 1 {
		t.Errorf("transition counts wrong: %v", c)
	}
}

func TestSynthesizeMultilevelMatchesTwoLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := Random(8, 2, 3, 0.5, rng)
	enc := BinaryEncoding(8)
	two, err := Synthesize(f, enc)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := SynthesizeMultilevel(f, enc)
	if err != nil {
		t.Fatal(err)
	}
	symbols := make([]int, 200)
	for i := range symbols {
		symbols[i] = rng.Intn(f.NumSymbols())
	}
	prov := func(c int) []bool { return bitutil.ToBits(uint64(symbols[c]), f.NumInputs) }
	a, err := sim.Run(two, prov, len(symbols), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(ml, prov, len(symbols), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Outputs {
		if bitutil.FromBits(a.Outputs[c]) != bitutil.FromBits(b.Outputs[c]) {
			t.Fatalf("cycle %d: multilevel controller diverges", c)
		}
	}
	// Factoring trades a few more (smaller) gates for fewer literal
	// connections: compare total gate input pins, the area/cap proxy.
	pins := func(n *logic.Netlist) int {
		total := 0
		for _, g := range n.Gates {
			total += len(g.Fanin)
		}
		return total
	}
	if p1, p2 := pins(ml), pins(two); p1 > p2 {
		t.Logf("note: multilevel pins %d vs two-level %d", p1, p2)
	}
}

func TestReEncodeImprovesLegacyEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := Random(14, 2, 2, 0.2, rng)
	p, err := f.TransitionProbabilities(nil)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately poor "legacy" start: reversed binary codes with the
	// reset state kept at 0.
	legacy := BinaryEncoding(f.NumStates)
	for i, j := 1, f.NumStates-1; i < j; i, j = i+1, j-1 {
		legacy.Codes[i], legacy.Codes[j] = legacy.Codes[j], legacy.Codes[i]
	}
	re := ReEncode(f, p, legacy, 6000, rng)
	if err := re.Validate(f.NumStates); err != nil {
		t.Fatal(err)
	}
	if re.Codes[0] != legacy.Codes[0] {
		t.Error("reencoding must keep the reset code")
	}
	if re.Width != legacy.Width {
		t.Error("reencoding must keep the width")
	}
	before := WeightedHamming(legacy, p)
	after := WeightedHamming(re, p)
	if after > before {
		t.Errorf("reencoding cost %v should not exceed start %v", after, before)
	}
}
