// Package fsm provides the finite-state-machine substrate of the
// control-oriented techniques: explicit state transition graphs, Markov
// steady-state analysis, state encodings (binary, Gray, one-hot, and
// low-power hypercube embedding by annealed swaps), synthesis of encoded
// machines to gate-level netlists, classical state minimization, and a
// symbolic (BDD) representation of the transition relation for the
// §III-H reencoding flow.
package fsm

import (
	"fmt"
	"math/rand"

	"hlpower/internal/bitutil"
	"hlpower/internal/stats"
)

// FSM is a deterministic completely specified Mealy machine: for every
// state and every input symbol there is exactly one next state and one
// output word.
type FSM struct {
	NumInputs  int // input bits; symbols are 0..2^NumInputs-1
	NumOutputs int
	NumStates  int
	Next       [][]int    // Next[s][symbol] = next state
	Out        [][]uint64 // Out[s][symbol] = output word
}

// NumSymbols returns the number of input symbols (2^NumInputs).
func (f *FSM) NumSymbols() int { return 1 << uint(f.NumInputs) }

// Validate checks structural consistency.
func (f *FSM) Validate() error {
	if f.NumStates <= 0 {
		return fmt.Errorf("fsm: no states")
	}
	if len(f.Next) != f.NumStates || len(f.Out) != f.NumStates {
		return fmt.Errorf("fsm: table sizes disagree with NumStates")
	}
	for s := 0; s < f.NumStates; s++ {
		if len(f.Next[s]) != f.NumSymbols() || len(f.Out[s]) != f.NumSymbols() {
			return fmt.Errorf("fsm: state %d row width wrong", s)
		}
		for _, nx := range f.Next[s] {
			if nx < 0 || nx >= f.NumStates {
				return fmt.Errorf("fsm: state %d has next state %d out of range", s, nx)
			}
		}
	}
	return nil
}

// Random generates a random machine. locality in (0,1] biases next
// states toward a few favourites per state, producing the sparse,
// structured graphs real controllers have (and that Tyagi's bound
// addresses); locality 1 is uniform.
func Random(nStates, nInputs, nOutputs int, locality float64, rng *rand.Rand) *FSM {
	f := &FSM{
		NumInputs:  nInputs,
		NumOutputs: nOutputs,
		NumStates:  nStates,
		Next:       make([][]int, nStates),
		Out:        make([][]uint64, nStates),
	}
	nsym := f.NumSymbols()
	outMask := bitutil.Mask(nOutputs)
	for s := 0; s < nStates; s++ {
		next := make([]int, nsym)
		out := make([]uint64, nsym)
		// Favourite targets for this state.
		nFav := 2
		if nFav > nStates {
			nFav = nStates
		}
		favs := rng.Perm(nStates)[:nFav]
		for sym := 0; sym < nsym; sym++ {
			if rng.Float64() > locality {
				next[sym] = favs[rng.Intn(len(favs))]
			} else {
				next[sym] = rng.Intn(nStates)
			}
			out[sym] = rng.Uint64() & outMask
		}
		f.Next[s] = next
		f.Out[s] = out
	}
	return f
}

// StationaryDistribution returns the steady-state probability of each
// state under independent uniform input symbols (or the supplied symbol
// distribution if non-nil).
func (f *FSM) StationaryDistribution(symbolDist []float64) ([]float64, error) {
	nsym := f.NumSymbols()
	if symbolDist == nil {
		symbolDist = make([]float64, nsym)
		for i := range symbolDist {
			symbolDist[i] = 1 / float64(nsym)
		}
	}
	P := make([][]float64, f.NumStates)
	for s := 0; s < f.NumStates; s++ {
		P[s] = make([]float64, f.NumStates)
		for sym := 0; sym < nsym; sym++ {
			P[s][f.Next[s][sym]] += symbolDist[sym]
		}
	}
	// Small uniform restart keeps the chain ergodic even when the random
	// graph is periodic or has transient states.
	const eps = 1e-6
	for s := range P {
		for j := range P[s] {
			P[s][j] = (1-eps)*P[s][j] + eps/float64(f.NumStates)
		}
	}
	return stats.Stationary(P, 1e-12, 0)
}

// TransitionProbabilities returns the steady-state joint probability
// p[i][j] of traversing the edge i→j per cycle, under the given (or
// uniform) input-symbol distribution.
func (f *FSM) TransitionProbabilities(symbolDist []float64) ([][]float64, error) {
	nsym := f.NumSymbols()
	if symbolDist == nil {
		symbolDist = make([]float64, nsym)
		for i := range symbolDist {
			symbolDist[i] = 1 / float64(nsym)
		}
	}
	pi, err := f.StationaryDistribution(symbolDist)
	if err != nil {
		return nil, err
	}
	p := make([][]float64, f.NumStates)
	for s := range p {
		p[s] = make([]float64, f.NumStates)
		for sym := 0; sym < nsym; sym++ {
			p[s][f.Next[s][sym]] += pi[s] * symbolDist[sym]
		}
	}
	return p, nil
}

// Simulate runs the machine from state 0 over the symbol stream and
// returns the visited state sequence (length len(symbols)+1) and the
// emitted outputs.
func (f *FSM) Simulate(symbols []int) (states []int, outputs []uint64) {
	states = make([]int, len(symbols)+1)
	outputs = make([]uint64, len(symbols))
	s := 0
	states[0] = s
	for i, sym := range symbols {
		outputs[i] = f.Out[s][sym]
		s = f.Next[s][sym]
		states[i+1] = s
	}
	return states, outputs
}

// CountTransitions tallies edge traversals of a simulated run into a
// state×state count matrix.
func (f *FSM) CountTransitions(states []int) [][]int {
	c := make([][]int, f.NumStates)
	for i := range c {
		c[i] = make([]int, f.NumStates)
	}
	for i := 1; i < len(states); i++ {
		c[states[i-1]][states[i]]++
	}
	return c
}
