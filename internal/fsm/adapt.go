package fsm

import (
	"fmt"
	"math/rand"
)

// EncodingByName constructs a named state encoding for the machine —
// the adapter the recipe layer's re-encoding passes select from.
// Seeded encodings ("random", "low-power") draw from rng; the rest
// ignore it. "low-power" anneals against the machine's uniform-input
// transition probabilities (§III-H).
func EncodingByName(f *FSM, name string, rng *rand.Rand) (*Encoding, error) {
	switch name {
	case "binary":
		return BinaryEncoding(f.NumStates), nil
	case "gray":
		return GrayEncoding(f.NumStates), nil
	case "one-hot":
		return OneHotEncoding(f.NumStates), nil
	case "random":
		return RandomEncoding(f.NumStates, minWidth(f.NumStates), rng)
	case "low-power":
		uniform := make([]float64, f.NumSymbols())
		for i := range uniform {
			uniform[i] = 1 / float64(len(uniform))
		}
		p, err := f.TransitionProbabilities(uniform)
		if err != nil {
			return nil, err
		}
		return LowPowerEncoding(f, p, 200, rng), nil
	default:
		return nil, fmt.Errorf("fsm: unknown encoding %q", name)
	}
}
