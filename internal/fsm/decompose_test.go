package fsm

import (
	"math/rand"
	"testing"
)

// twoPhaseFSM builds a machine with two tightly connected clusters and
// rare cross transitions: states 0..4 cycle among themselves, states
// 5..9 likewise; input symbol 3 jumps across.
func twoPhaseFSM() *FSM {
	n := 10
	f := &FSM{NumInputs: 2, NumOutputs: 2, NumStates: n,
		Next: make([][]int, n), Out: make([][]uint64, n)}
	for s := 0; s < n; s++ {
		f.Next[s] = make([]int, 4)
		f.Out[s] = make([]uint64, 4)
		cluster := s / 5
		base := cluster * 5
		for sym := 0; sym < 4; sym++ {
			switch sym {
			case 3: // cross to the other cluster
				f.Next[s][sym] = (1-cluster)*5 + (s+1)%5
			default:
				f.Next[s][sym] = base + (s+sym+1)%5
			}
			f.Out[s][sym] = uint64((s + sym) & 3)
		}
	}
	return f
}

func TestPartitionFindsClusters(t *testing.T) {
	f := twoPhaseFSM()
	// Symbol distribution heavily favouring intra-cluster moves.
	dist := []float64{0.4, 0.3, 0.25, 0.05}
	p, err := f.TransitionProbabilities(dist)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	part := PartitionStates(f, p, 6, rng)
	// The natural split puts 0-4 on one side, 5-9 on the other.
	for s := 1; s < 5; s++ {
		if part.Side[s] != part.Side[0] {
			t.Errorf("state %d should share a side with state 0", s)
		}
	}
	for s := 6; s < 10; s++ {
		if part.Side[s] != part.Side[5] {
			t.Errorf("state %d should share a side with state 5", s)
		}
	}
	if part.Side[0] == part.Side[5] {
		t.Error("clusters should be separated")
	}
	if part.Cross > 0.1 {
		t.Errorf("crossing probability %v too high for this structure", part.Cross)
	}
}

func TestDecomposeBehaviourMatches(t *testing.T) {
	f := twoPhaseFSM()
	dist := []float64{0.4, 0.3, 0.25, 0.05}
	p, err := f.TransitionProbabilities(dist)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	part := PartitionStates(f, p, 6, rng)
	d, err := Decompose(f, part)
	if err != nil {
		t.Fatal(err)
	}
	// Random symbols biased toward intra-cluster motion.
	symbols := make([]int, 400)
	for i := range symbols {
		r := rng.Float64()
		switch {
		case r < 0.4:
			symbols[i] = 0
		case r < 0.7:
			symbols[i] = 1
		case r < 0.95:
			symbols[i] = 2
		default:
			symbols[i] = 3
		}
	}
	res, err := d.Simulate(symbols, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatal("decomposed outputs diverge from the monolithic machine")
	}
	if res.Handoffs == 0 {
		t.Error("workload should include some handoffs")
	}
}

func TestDecomposeSavesPowerOnClusteredWorkload(t *testing.T) {
	f := twoPhaseFSM()
	dist := []float64{0.4, 0.3, 0.25, 0.05}
	p, err := f.TransitionProbabilities(dist)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	part := PartitionStates(f, p, 6, rng)
	d, err := Decompose(f, part)
	if err != nil {
		t.Fatal(err)
	}
	symbols := make([]int, 800)
	for i := range symbols {
		if rng.Float64() < 0.97 {
			symbols[i] = rng.Intn(3)
		} else {
			symbols[i] = 3
		}
	}
	res, err := d.Simulate(symbols, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatal("behaviour broken")
	}
	if res.DecomposedCap >= res.MonolithicCap {
		t.Errorf("decomposed cap %v should beat monolithic %v on a clustered workload",
			res.DecomposedCap, res.MonolithicCap)
	}
}

func TestDecomposeRejectsHugeInterfaces(t *testing.T) {
	// 200 local states would need > 16 lifted input bits.
	n := 300
	f := &FSM{NumInputs: 8, NumOutputs: 1, NumStates: n,
		Next: make([][]int, n), Out: make([][]uint64, n)}
	for s := 0; s < n; s++ {
		f.Next[s] = make([]int, 256)
		f.Out[s] = make([]uint64, 256)
		for sym := 0; sym < 256; sym++ {
			f.Next[s][sym] = (s + 1) % n
		}
	}
	part := &Partition{Side: make([]int, n)}
	for s := n / 2; s < n; s++ {
		part.Side[s] = 1
	}
	if _, err := Decompose(f, part); err == nil {
		t.Error("expected width rejection")
	}
}
