package fsm

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hlpower/internal/bitutil"
)

// KISS2 interchange: the standard text format for FSM benchmarks (used
// by SIS and the MCNC suite the surveyed encoding papers evaluate on).
// Deterministic, completely specified machines only; input cubes with
// don't-cares ('-') are expanded over the missing bits.

// WriteKISS serializes the machine in kiss2 format. State names are
// s0..sN-1; the reset state is s0.
func WriteKISS(w io.Writer, f *FSM) error {
	if err := f.Validate(); err != nil {
		return err
	}
	nsym := f.NumSymbols()
	fmt.Fprintf(w, ".i %d\n.o %d\n.s %d\n.p %d\n.r s0\n",
		f.NumInputs, f.NumOutputs, f.NumStates, f.NumStates*nsym)
	for s := 0; s < f.NumStates; s++ {
		for sym := 0; sym < nsym; sym++ {
			in := formatBits(uint64(sym), f.NumInputs)
			out := formatBits(f.Out[s][sym], f.NumOutputs)
			fmt.Fprintf(w, "%s s%d s%d %s\n", in, s, f.Next[s][sym], out)
		}
	}
	fmt.Fprintln(w, ".e")
	return nil
}

// formatBits renders the low n bits MSB-first (kiss2 convention).
func formatBits(v uint64, n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		if v>>uint(n-1-i)&1 == 1 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// ParseKISS reads a kiss2 machine. Transitions may use '-' don't-cares
// in the input field (expanded) and any state names; the reset state
// (.r, or the first transition's source) becomes state 0. Every
// (state, symbol) pair must be covered exactly once; uncovered pairs are
// an error (the surveyed techniques assume completely specified
// machines).
func ParseKISS(r io.Reader) (*FSM, error) {
	sc := bufio.NewScanner(r)
	var nIn, nOut int
	var resetName string
	type transition struct {
		in       string
		from, to string
		out      string
	}
	var trs []transition
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, ".i "):
			nIn, _ = strconv.Atoi(fields[1])
		case strings.HasPrefix(line, ".o "):
			nOut, _ = strconv.Atoi(fields[1])
		case strings.HasPrefix(line, ".r "):
			resetName = fields[1]
		case strings.HasPrefix(line, ".s "), strings.HasPrefix(line, ".p "):
			// advisory; recomputed
		case strings.HasPrefix(line, ".e"):
			// end
		case strings.HasPrefix(line, "."):
			return nil, fmt.Errorf("fsm: unknown kiss directive %q", fields[0])
		default:
			if len(fields) != 4 {
				return nil, fmt.Errorf("fsm: malformed kiss line %q", line)
			}
			trs = append(trs, transition{fields[0], fields[1], fields[2], fields[3]})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if nIn <= 0 || nOut < 0 || len(trs) == 0 {
		return nil, fmt.Errorf("fsm: kiss header incomplete (i=%d o=%d p=%d)", nIn, nOut, len(trs))
	}
	if nIn > 16 {
		return nil, fmt.Errorf("fsm: %d inputs too many to expand", nIn)
	}
	// Collect state names deterministically: reset first, then by first
	// appearance.
	nameID := make(map[string]int)
	var names []string
	intern := func(name string) int {
		if id, ok := nameID[name]; ok {
			return id
		}
		id := len(names)
		nameID[name] = id
		names = append(names, name)
		return id
	}
	if resetName == "" {
		resetName = trs[0].from
	}
	intern(resetName)
	for _, t := range trs {
		intern(t.from)
		intern(t.to)
	}
	n := len(names)
	nsym := 1 << uint(nIn)
	f := &FSM{NumInputs: nIn, NumOutputs: nOut, NumStates: n,
		Next: make([][]int, n), Out: make([][]uint64, n)}
	covered := make([][]bool, n)
	for s := range f.Next {
		f.Next[s] = make([]int, nsym)
		f.Out[s] = make([]uint64, nsym)
		covered[s] = make([]bool, nsym)
	}
	for _, t := range trs {
		from, to := nameID[t.from], nameID[t.to]
		outVal, err := parseBits(t.out, nOut)
		if err != nil {
			return nil, fmt.Errorf("fsm: output field %q: %w", t.out, err)
		}
		syms, err := expandCube(t.in, nIn)
		if err != nil {
			return nil, fmt.Errorf("fsm: input field %q: %w", t.in, err)
		}
		for _, sym := range syms {
			if covered[from][sym] {
				return nil, fmt.Errorf("fsm: state %s symbol %s specified twice", t.from, t.in)
			}
			covered[from][sym] = true
			f.Next[from][sym] = to
			f.Out[from][sym] = outVal
		}
	}
	for s := range covered {
		for sym, ok := range covered[s] {
			if !ok {
				return nil, fmt.Errorf("fsm: state %s uncovered for symbol %s",
					names[s], formatBits(uint64(sym), nIn))
			}
		}
	}
	return f, nil
}

// parseBits reads an MSB-first 0/1 string ('-' outputs read as 0).
func parseBits(s string, n int) (uint64, error) {
	if len(s) != n {
		return 0, fmt.Errorf("want %d bits, got %d", n, len(s))
	}
	var v uint64
	for i := 0; i < n; i++ {
		switch s[i] {
		case '1':
			v |= 1 << uint(n-1-i)
		case '0', '-':
		default:
			return 0, fmt.Errorf("bad bit %q", s[i])
		}
	}
	return v, nil
}

// expandCube enumerates the symbols matched by an MSB-first pattern with
// '-' don't-cares.
func expandCube(s string, n int) ([]int, error) {
	if len(s) != n {
		return nil, fmt.Errorf("want %d bits, got %d", n, len(s))
	}
	var free []int // bit positions (LSB indexing)
	var base uint64
	for i := 0; i < n; i++ {
		bit := n - 1 - i
		switch s[i] {
		case '1':
			base |= 1 << uint(bit)
		case '0':
		case '-':
			free = append(free, bit)
		default:
			return nil, fmt.Errorf("bad bit %q", s[i])
		}
	}
	out := make([]int, 0, 1<<uint(len(free)))
	for m := uint64(0); m < 1<<uint(len(free)); m++ {
		v := base
		for j, bit := range free {
			if bitutil.Bit(m, j) {
				v |= 1 << uint(bit)
			}
		}
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out, nil
}
