package fsm

// Minimize collapses equivalent states of the completely specified
// machine by partition refinement (Moore's algorithm, the classical
// "restructuring" transformation of §III-H) and returns the reduced
// machine together with the old→new state mapping.
func Minimize(f *FSM) (*FSM, []int) {
	nsym := f.NumSymbols()
	// Initial partition: group states by their full output rows.
	sig := make(map[string][]int)
	rowKey := func(s int) string {
		key := make([]byte, 0, nsym*8)
		for sym := 0; sym < nsym; sym++ {
			v := f.Out[s][sym]
			for b := 0; b < 8; b++ {
				key = append(key, byte(v>>uint(8*b)))
			}
		}
		return string(key)
	}
	block := make([]int, f.NumStates)
	nBlocks := 0
	for s := 0; s < f.NumStates; s++ {
		k := rowKey(s)
		if _, ok := sig[k]; !ok {
			sig[k] = []int{nBlocks}
			nBlocks++
		}
		block[s] = sig[k][0]
	}
	// Refine until stable: two states stay together iff all successors
	// agree blockwise.
	for {
		type refineKey struct {
			oldBlock int
			succ     string
		}
		next := make(map[refineKey]int)
		newBlock := make([]int, f.NumStates)
		newCount := 0
		for s := 0; s < f.NumStates; s++ {
			succ := make([]byte, 0, nsym*4)
			for sym := 0; sym < nsym; sym++ {
				b := block[f.Next[s][sym]]
				succ = append(succ, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
			}
			k := refineKey{block[s], string(succ)}
			id, ok := next[k]
			if !ok {
				id = newCount
				newCount++
				next[k] = id
			}
			newBlock[s] = id
		}
		if newCount == nBlocks {
			block = newBlock
			break
		}
		block, nBlocks = newBlock, newCount
	}
	// Build the quotient machine; block ids are renumbered so that the
	// block containing state 0 becomes state 0 (preserving reset).
	remap := make([]int, nBlocks)
	for i := range remap {
		remap[i] = -1
	}
	order := 0
	assign := func(b int) int {
		if remap[b] < 0 {
			remap[b] = order
			order++
		}
		return remap[b]
	}
	assign(block[0])
	for s := 0; s < f.NumStates; s++ {
		assign(block[s])
	}
	min := &FSM{
		NumInputs:  f.NumInputs,
		NumOutputs: f.NumOutputs,
		NumStates:  nBlocks,
		Next:       make([][]int, nBlocks),
		Out:        make([][]uint64, nBlocks),
	}
	mapping := make([]int, f.NumStates)
	for s := 0; s < f.NumStates; s++ {
		nb := remap[block[s]]
		mapping[s] = nb
		if min.Next[nb] != nil {
			continue
		}
		min.Next[nb] = make([]int, nsym)
		min.Out[nb] = make([]uint64, nsym)
		for sym := 0; sym < nsym; sym++ {
			min.Next[nb][sym] = remap[block[f.Next[s][sym]]]
			min.Out[nb][sym] = f.Out[s][sym]
		}
	}
	return min, mapping
}
