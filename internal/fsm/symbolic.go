package fsm

import (
	"hlpower/internal/bdd"
)

// SymbolicRelation is the BDD transition relation T(x, s, s') of an
// encoded machine — the representation the §III-H reencoding algorithms
// manipulate when the STG is too large to enumerate. Variable order is
// inputs, present-state bits, next-state bits.
type SymbolicRelation struct {
	M         *bdd.Manager
	F         *FSM
	Enc       *Encoding
	T         bdd.Node
	InputVars []int
	StateVars []int
	NextVars  []int
}

// BuildRelation constructs the monolithic transition relation.
func BuildRelation(f *FSM, enc *Encoding) *SymbolicRelation {
	nIn, w := f.NumInputs, enc.Width
	m := bdd.New(nIn + 2*w)
	r := &SymbolicRelation{M: m, F: f, Enc: enc}
	for i := 0; i < nIn; i++ {
		r.InputVars = append(r.InputVars, i)
	}
	for i := 0; i < w; i++ {
		r.StateVars = append(r.StateVars, nIn+i)
		r.NextVars = append(r.NextVars, nIn+w+i)
	}
	cubeEq := func(vars []int, code uint64) bdd.Node {
		c := bdd.True
		for i, v := range vars {
			lit := m.Var(v)
			if code>>uint(i)&1 == 0 {
				lit = m.Not(lit)
			}
			c = m.And(c, lit)
		}
		return c
	}
	inputEq := func(sym int) bdd.Node {
		c := bdd.True
		for i, v := range r.InputVars {
			lit := m.Var(v)
			if sym>>uint(i)&1 == 0 {
				lit = m.Not(lit)
			}
			c = m.And(c, lit)
		}
		return c
	}
	T := bdd.False
	for s := 0; s < f.NumStates; s++ {
		pres := cubeEq(r.StateVars, enc.Codes[s])
		for sym := 0; sym < f.NumSymbols(); sym++ {
			nxt := cubeEq(r.NextVars, enc.Codes[f.Next[s][sym]])
			T = m.Or(T, m.AndN(inputEq(sym), pres, nxt))
		}
	}
	r.T = T
	return r
}

// Reachable returns the characteristic function (over the present-state
// variables) of the states reachable from state 0, by least-fixpoint
// image computation — the core symbolic traversal of §III-H.
func (r *SymbolicRelation) Reachable() bdd.Node {
	m := r.M
	stateEq := func(code uint64) bdd.Node {
		c := bdd.True
		for i, v := range r.StateVars {
			lit := m.Var(v)
			if code>>uint(i)&1 == 0 {
				lit = m.Not(lit)
			}
			c = m.And(c, lit)
		}
		return c
	}
	reached := stateEq(r.Enc.Codes[0])
	quantify := append(append([]int{}, r.InputVars...), r.StateVars...)
	for {
		// Image: ∃x,s. T(x,s,s') ∧ reached(s) via the relational product,
		// then rename s'→s.
		img := m.AndExists(r.T, reached, quantify)
		img = r.renameNextToState(img)
		next := m.Or(reached, img)
		if next == reached {
			return reached
		}
		reached = next
	}
}

// renameNextToState substitutes next-state variables by the matching
// present-state variables (valid because f contains only next vars).
func (r *SymbolicRelation) renameNextToState(f bdd.Node) bdd.Node {
	m := r.M
	// Compose one variable at a time: f[s'_i := s_i].
	for i, nv := range r.NextVars {
		sv := r.StateVars[i]
		f = m.ITE(m.Var(sv), m.Restrict(f, nv, true), m.Restrict(f, nv, false))
	}
	return f
}

// ReachableStates enumerates reachable state indices explicitly (for
// validation against the symbolic computation).
func (f *FSM) ReachableStates() []bool {
	seen := make([]bool, f.NumStates)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for sym := 0; sym < f.NumSymbols(); sym++ {
			n := f.Next[s][sym]
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return seen
}
