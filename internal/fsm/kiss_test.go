package fsm

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"
)

func TestKISSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		f := Random(6+rng.Intn(6), 1+rng.Intn(3), 1+rng.Intn(3), 0.5, rng)
		var buf bytes.Buffer
		if err := WriteKISS(&buf, f); err != nil {
			t.Fatal(err)
		}
		g, err := ParseKISS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumStates != f.NumStates || g.NumInputs != f.NumInputs || g.NumOutputs != f.NumOutputs {
			t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
				g.NumStates, g.NumInputs, g.NumOutputs, f.NumStates, f.NumInputs, f.NumOutputs)
		}
		// Behavioural equivalence from reset.
		symbols := make([]int, 200)
		for i := range symbols {
			symbols[i] = rng.Intn(f.NumSymbols())
		}
		_, a := f.Simulate(symbols)
		_, b := g.Simulate(symbols)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: kiss round-trip diverges at step %d", trial, i)
			}
		}
	}
}

func TestParseKISSDontCares(t *testing.T) {
	// A 2-input machine written compactly with don't-cares.
	src := `
.i 2
.o 1
.s 2
.p 4
.r idle
-1 idle run 1
-0 idle idle 0
1- run idle 1
0- run run 0
.e
`
	f, err := ParseKISS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumStates != 2 {
		t.Fatalf("states = %d", f.NumStates)
	}
	// idle is state 0 (reset). Input bit 0 is the LSB ('-1' means x0=1).
	if f.Next[0][0b01] != 1 || f.Next[0][0b11] != 1 {
		t.Error("idle should run when x0=1")
	}
	if f.Next[0][0b00] != 0 || f.Next[0][0b10] != 0 {
		t.Error("idle should hold when x0=0")
	}
	if f.Next[1][0b10] != 0 || f.Next[1][0b11] != 0 {
		t.Error("run should return to idle when x1=1")
	}
	if f.Out[0][0b01] != 1 {
		t.Error("output bit wrong")
	}
}

func TestParseKISSErrors(t *testing.T) {
	cases := map[string]string{
		"incomplete": ".i 1\n.o 1\n.e\n",
		"overlap":    ".i 1\n.o 1\n.r a\n- a a 1\n0 a a 0\n.e\n",
		"uncovered":  ".i 1\n.o 1\n.r a\n0 a a 0\n.e\n",
		"badline":    ".i 1\n.o 1\n.r a\n0 a a\n.e\n",
		"badbit":     ".i 1\n.o 1\n.r a\nx a a 0\n.e\n",
	}
	for name, src := range cases {
		if _, err := ParseKISS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestWriteKISSFormat(t *testing.T) {
	f := counterFSM()
	var buf bytes.Buffer
	if err := WriteKISS(&buf, f); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{".i 1", ".o 2", ".s 4", ".r s0", ".e"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestParseKISSFile(t *testing.T) {
	file, err := os.Open("testdata/traffic.kiss2")
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	f, err := ParseKISS(file)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumStates != 4 || f.NumInputs != 2 || f.NumOutputs != 3 {
		t.Fatalf("shape: %d states %d in %d out", f.NumStates, f.NumInputs, f.NumOutputs)
	}
	// green (state 0) holds while no car (x0=0, the MSB-first field's
	// second character is bit 0).
	if f.Next[0][0b00] != 0 {
		t.Error("green should hold without a car")
	}
	// Synthesize and run it end to end.
	net, err := Synthesize(f, BinaryEncoding(f.NumStates))
	if err != nil {
		t.Fatal(err)
	}
	if net.NumGates() == 0 {
		t.Fatal("empty controller")
	}
}
