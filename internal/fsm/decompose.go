package fsm

import (
	"fmt"
	"math/rand"

	"hlpower/internal/bitutil"
	"hlpower/internal/logic"
	"hlpower/internal/sim"
)

// FSM decomposition (§III-H, [86][87]): split one controller into two
// interconnected submachines, each augmented with a WAIT state, so that
// only one is active at any time and the other can be shut down
// (clock-gated). The partition minimizes the steady-state probability of
// crossing the boundary, since handoffs wake the peer and drive the
// heavily loaded interconnect lines.

// Partition is a two-way split of the state set.
type Partition struct {
	Side  []int // 0 or 1 per state
	Cross float64
}

// PartitionStates greedily bipartitions the machine to minimize the
// crossing probability Σ p[i][j] over boundary edges, by random balanced
// starts followed by best-improvement swaps (a small Kernighan–Lin).
func PartitionStates(f *FSM, p [][]float64, restarts int, rng *rand.Rand) *Partition {
	n := f.NumStates
	if restarts <= 0 {
		restarts = 4
	}
	cross := func(side []int) float64 {
		var c float64
		for i := range p {
			for j, pij := range p[i] {
				if pij > 0 && side[i] != side[j] {
					c += pij
				}
			}
		}
		return c
	}
	var best []int
	bestCost := -1.0
	for r := 0; r < restarts; r++ {
		side := make([]int, n)
		perm := rng.Perm(n)
		for i, s := range perm {
			if i >= n/2 {
				side[s] = 1
			}
		}
		improved := true
		for improved {
			improved = false
			cur := cross(side)
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					if side[a] == side[b] {
						continue
					}
					side[a], side[b] = side[b], side[a]
					if nc := cross(side); nc < cur {
						cur = nc
						improved = true
					} else {
						side[a], side[b] = side[b], side[a]
					}
				}
			}
		}
		if c := cross(side); bestCost < 0 || c < bestCost {
			bestCost = c
			best = append([]int{}, side...)
		}
	}
	return &Partition{Side: best, Cross: bestCost}
}

// Submachine is one half of a decomposition: a synthesized netlist plus
// the bookkeeping to drive it. Input layout: global inputs, then entry-
// state code (local bits), then the resume flag. State 0 is WAIT.
type Submachine struct {
	Net      *logic.Netlist
	Local    []int // local id per member state (1-based; WAIT is 0)
	Members  []int // global state per local id (index 1..)
	Bits     int   // local state-code width
	GlobalIn int   // global input bits
}

// Decomposition packages both submachines and the partition.
type Decomposition struct {
	A, B *Submachine
	Part *Partition
	F    *FSM
}

// Decompose builds the two interacting submachines. Each submachine's
// FSM has: WAIT (state 0) plus its member states; on a symbol whose
// successor leaves the cluster it falls to WAIT; from WAIT it resumes at
// the entry code when the resume flag is raised. Outputs are the
// original output bits (valid while active).
func Decompose(f *FSM, part *Partition) (*Decomposition, error) {
	d := &Decomposition{Part: part, F: f}
	var err error
	if d.A, err = buildSubmachine(f, part, 0); err != nil {
		return nil, err
	}
	if d.B, err = buildSubmachine(f, part, 1); err != nil {
		return nil, err
	}
	return d, nil
}

func buildSubmachine(f *FSM, part *Partition, side int) (*Submachine, error) {
	sm := &Submachine{GlobalIn: f.NumInputs}
	sm.Local = make([]int, f.NumStates)
	sm.Members = []int{-1} // local 0 = WAIT
	for s := 0; s < f.NumStates; s++ {
		if part.Side[s] == side {
			sm.Local[s] = len(sm.Members)
			sm.Members = append(sm.Members, s)
		} else {
			sm.Local[s] = -1
		}
	}
	nLocal := len(sm.Members)
	sm.Bits = minWidth(nLocal)

	// The lifted FSM's inputs: global inputs + entry code + resume.
	nIn := f.NumInputs + sm.Bits + 1
	if nIn > 16 {
		return nil, fmt.Errorf("fsm: decomposed input width %d too large", nIn)
	}
	nsym := 1 << uint(nIn)
	lifted := &FSM{
		NumInputs:  nIn,
		NumOutputs: f.NumOutputs,
		NumStates:  nLocal,
		Next:       make([][]int, nLocal),
		Out:        make([][]uint64, nLocal),
	}
	entryOf := func(sym int) int {
		return sym >> uint(f.NumInputs) & int(bitutil.Mask(sm.Bits))
	}
	resumeOf := func(sym int) bool {
		return sym>>uint(f.NumInputs+sm.Bits)&1 == 1
	}
	for ls := 0; ls < nLocal; ls++ {
		lifted.Next[ls] = make([]int, nsym)
		lifted.Out[ls] = make([]uint64, nsym)
		for sym := 0; sym < nsym; sym++ {
			gsym := sym & int(bitutil.Mask(f.NumInputs))
			if ls == 0 { // WAIT
				if resumeOf(sym) && entryOf(sym) < nLocal && entryOf(sym) > 0 {
					lifted.Next[0][sym] = entryOf(sym)
				} else {
					lifted.Next[0][sym] = 0
				}
				lifted.Out[0][sym] = 0
				continue
			}
			gState := sm.Members[ls]
			gNext := f.Next[gState][gsym]
			if l := sm.Local[gNext]; l > 0 {
				lifted.Next[ls][sym] = l
			} else {
				lifted.Next[ls][sym] = 0 // hand off
			}
			lifted.Out[ls][sym] = f.Out[gState][gsym]
		}
	}
	net, err := Synthesize(lifted, BinaryEncoding(nLocal))
	if err != nil {
		return nil, err
	}
	// If this side owns the global reset state, the local registers must
	// reset to its code rather than WAIT.
	if l := sm.Local[0]; l > 0 {
		bit := 0
		for id, g := range net.Gates {
			if g.Kind == logic.DFF && g.Group == GroupStateReg {
				net.SetInit(id, l>>uint(bit)&1 == 1)
				bit++
			}
		}
	}
	sm.Net = net
	return sm, nil
}

// DecompositionResult compares the monolithic controller against the
// decomposed pair under the same symbol stream.
type DecompositionResult struct {
	MonolithicCap float64
	DecomposedCap float64
	Handoffs      int
	OutputsMatch  bool
}

// Simulate runs both implementations over the symbol stream: the
// monolithic netlist plainly, and the decomposed pair with the inactive
// submachine clock-gated and fed frozen inputs (its logic sees no
// transitions). The supervisor — the small amount of glue the paper's
// decomposed controllers carry — is evaluated behaviourally and charged
// the handoff count on the boundary lines.
func (d *Decomposition) Simulate(symbols []int, handoffLineCap float64) (*DecompositionResult, error) {
	mono, err := Synthesize(d.F, BinaryEncoding(d.F.NumStates))
	if err != nil {
		return nil, err
	}
	prov := func(c int) []bool { return bitutil.ToBits(uint64(symbols[c]), d.F.NumInputs) }
	mres, err := sim.Run(mono, prov, len(symbols), sim.Options{Model: sim.EventDriven, TrackClock: true})
	if err != nil {
		return nil, err
	}

	// Reference walk for activity, handoffs, and expected outputs.
	states, outs := d.F.Simulate(symbols)
	handoffs := 0
	for i := 1; i < len(states); i++ {
		if d.Part.Side[states[i-1]] != d.Part.Side[states[i]] {
			handoffs++
		}
	}

	// Build each submachine's input stream: real symbols while active
	// (or resuming), frozen zeros while asleep; enable = active|resuming.
	run := func(sm *Submachine, side int) (*sim.Result, []uint64, error) {
		vectors := make([][]bool, len(symbols))
		enables := make([]bool, len(symbols))
		lastVec := make([]bool, sm.GlobalIn+sm.Bits+1)
		for c := range symbols {
			active := d.Part.Side[states[c]] == side
			// The peer hands off during cycle c when this side owns the
			// state of cycle c+1 but not that of cycle c: the resume flag
			// and entry code must be on the inputs during cycle c so the
			// edge into c+1 captures the entry state.
			handingIn := !active && c+1 < len(states) &&
				d.Part.Side[states[c+1]] == side
			word := uint64(symbols[c])
			if handingIn {
				word |= uint64(sm.Local[states[c+1]]) << uint(sm.GlobalIn)
				word |= 1 << uint(sm.GlobalIn+sm.Bits)
			}
			if active || handingIn {
				lastVec = bitutil.ToBits(word, sm.GlobalIn+sm.Bits+1)
				enables[c] = true
			}
			vec := make([]bool, len(lastVec))
			copy(vec, lastVec)
			vectors[c] = vec
		}
		// Clock gating is modeled by the enables: replace the state DFFs
		// with EnDFFs driven by an extra enable input.
		gated, enSig := addClockEnable(sm.Net)
		full := make([][]bool, len(vectors))
		for c := range vectors {
			full[c] = append(append([]bool{}, vectors[c]...), enables[c])
		}
		_ = enSig
		res, err := sim.Run(gated, sim.VectorInputs(full), len(full),
			sim.Options{Model: sim.EventDriven, TrackClock: true, GateClock: true})
		if err != nil {
			return nil, nil, err
		}
		outWords := make([]uint64, len(res.Outputs))
		for c, o := range res.Outputs {
			outWords[c] = bitutil.FromBits(o)
		}
		return res, outWords, nil
	}
	resA, outA, err := run(d.A, 0)
	if err != nil {
		return nil, err
	}
	resB, outB, err := run(d.B, 1)
	if err != nil {
		return nil, err
	}

	match := true
	for c := range outs {
		var got uint64
		if d.Part.Side[states[c]] == 0 {
			got = outA[c]
		} else {
			got = outB[c]
		}
		if got != outs[c] {
			match = false
			break
		}
	}
	return &DecompositionResult{
		MonolithicCap: mres.SwitchedCap,
		DecomposedCap: resA.SwitchedCap + resB.SwitchedCap + float64(handoffs)*handoffLineCap,
		Handoffs:      handoffs,
		OutputsMatch:  match,
	}, nil
}

// addClockEnable clones a synthesized controller, converts its state
// DFFs to enable-gated registers, and appends an enable primary input.
func addClockEnable(n *logic.Netlist) (*logic.Netlist, int) {
	out := logic.New()
	out.InputCap = n.InputCap
	out.WireCapPerFanout = n.WireCapPerFanout
	out.OutputLoad = n.OutputLoad
	out.ClockCap = n.ClockCap
	out.Gates = make([]logic.Gate, len(n.Gates))
	for i, g := range n.Gates {
		ng := g
		ng.Fanin = append([]int(nil), g.Fanin...)
		out.Gates[i] = ng
	}
	out.Inputs = append([]int(nil), n.Inputs...)
	out.Outputs = append([]int(nil), n.Outputs...)
	en := out.AddInput("clk_en")
	for id := range out.Gates {
		if out.Gates[id].Kind == logic.DFF {
			d := out.Gates[id].Fanin[0]
			out.Gates[id].Kind = logic.EnDFF
			out.Gates[id].Fanin = []int{en, d}
		}
	}
	return out, en
}
