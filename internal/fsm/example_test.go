package fsm_test

import (
	"os"

	"hlpower/internal/fsm"
)

func ExampleWriteKISS() {
	// A two-state toggle machine.
	f := &fsm.FSM{NumInputs: 1, NumOutputs: 1, NumStates: 2,
		Next: [][]int{{0, 1}, {1, 0}},
		Out:  [][]uint64{{0, 0}, {1, 1}},
	}
	fsm.WriteKISS(os.Stdout, f)
	// Output:
	// .i 1
	// .o 1
	// .s 2
	// .p 4
	// .r s0
	// 0 s0 s0 0
	// 1 s0 s1 0
	// 0 s1 s1 1
	// 1 s1 s0 1
	// .e
}
