package fsm

import (
	"fmt"
	"math/rand"

	"hlpower/internal/bitutil"
	"hlpower/internal/hlerr"
)

// Encoding assigns each state a distinct binary code of the given width.
type Encoding struct {
	Width int
	Codes []uint64
}

// Validate checks distinctness and width.
func (e *Encoding) Validate(nStates int) error {
	if len(e.Codes) != nStates {
		return fmt.Errorf("fsm: encoding has %d codes, want %d", len(e.Codes), nStates)
	}
	if nStates > 1<<uint(e.Width) {
		return fmt.Errorf("fsm: %d states do not fit in %d bits", nStates, e.Width)
	}
	seen := make(map[uint64]bool)
	for s, c := range e.Codes {
		if c > bitutil.Mask(e.Width) {
			return fmt.Errorf("fsm: code %#x of state %d exceeds width %d", c, s, e.Width)
		}
		if seen[c] {
			return fmt.Errorf("fsm: duplicate code %#x", c)
		}
		seen[c] = true
	}
	return nil
}

// minWidth returns ceil(log2(nStates)).
func minWidth(nStates int) int {
	w := 0
	for 1<<uint(w) < nStates {
		w++
	}
	if w == 0 {
		w = 1
	}
	return w
}

// BinaryEncoding numbers states in order with minimal width.
func BinaryEncoding(nStates int) *Encoding {
	e := &Encoding{Width: minWidth(nStates), Codes: make([]uint64, nStates)}
	for s := range e.Codes {
		e.Codes[s] = uint64(s)
	}
	return e
}

// GrayEncoding numbers states along the reflected Gray sequence.
func GrayEncoding(nStates int) *Encoding {
	e := &Encoding{Width: minWidth(nStates), Codes: make([]uint64, nStates)}
	for s := range e.Codes {
		e.Codes[s] = bitutil.Gray(uint64(s))
	}
	return e
}

// OneHotEncoding uses one bit per state.
func OneHotEncoding(nStates int) *Encoding {
	e := &Encoding{Width: nStates, Codes: make([]uint64, nStates)}
	for s := range e.Codes {
		e.Codes[s] = 1 << uint(s)
	}
	return e
}

// RandomEncoding draws distinct random codes of the given width. A
// width too small to give every state a distinct code is a typed input
// error.
func RandomEncoding(nStates, width int, rng *rand.Rand) (*Encoding, error) {
	if width <= 0 || width > 63 || nStates > 1<<uint(width) {
		return nil, hlerr.Errorf("fsm.RandomEncoding",
			"width %d cannot encode %d distinct states", width, nStates)
	}
	perm := rng.Perm(1 << uint(width))
	e := &Encoding{Width: width, Codes: make([]uint64, nStates)}
	for s := range e.Codes {
		e.Codes[s] = uint64(perm[s])
	}
	return e, nil
}

// WeightedHamming returns Σ p[i][j]·H(code_i, code_j), the switching cost
// the low-power encoding algorithms minimize (§III-H): the expected
// number of state-register bits toggling per cycle.
func WeightedHamming(enc *Encoding, p [][]float64) float64 {
	var cost float64
	for i := range p {
		for j, pij := range p[i] {
			if pij == 0 || i == j {
				continue
			}
			cost += pij * float64(bitutil.Hamming(enc.Codes[i], enc.Codes[j]))
		}
	}
	return cost
}

// LowPowerEncoding searches for a minimal-width encoding that embeds the
// STG into the hypercube so high-probability transitions land at small
// Hamming distance. It runs simulated annealing over code swaps and
// reassignments starting from the binary encoding, preserving code 0 for
// state 0 (the reset state). iters of a few thousand suffices for
// machines with tens of states.
func LowPowerEncoding(f *FSM, p [][]float64, iters int, rng *rand.Rand) *Encoding {
	if f.NumStates < 2 {
		// Nothing to optimize (and the swap proposal below needs a
		// second state to draw).
		return BinaryEncoding(f.NumStates)
	}
	width := minWidth(f.NumStates)
	enc := &Encoding{Width: width, Codes: make([]uint64, f.NumStates)}
	copy(enc.Codes, BinaryEncoding(f.NumStates).Codes)

	used := make(map[uint64]int) // code -> state
	for s, c := range enc.Codes {
		used[c] = s
	}
	cost := WeightedHamming(enc, p)
	best := &Encoding{Width: width, Codes: append([]uint64{}, enc.Codes...)}
	bestCost := cost

	if iters <= 0 {
		iters = 4000
	}
	temp := 1.0
	cool := 0.999
	allCodes := 1 << uint(width)
	for it := 0; it < iters; it++ {
		temp *= cool
		// Propose: either swap two states' codes, or move one state to a
		// free code. State 0 keeps code 0.
		s := 1 + rng.Intn(f.NumStates-1)
		var delta float64
		oldCode := enc.Codes[s]
		newCode := uint64(rng.Intn(allCodes))
		if newCode == 0 || newCode == oldCode {
			continue
		}
		other, taken := used[newCode]
		apply := func(code uint64, st int) {
			enc.Codes[st] = code
		}
		// Compute cost delta by recomputing affected rows/cols (cheap for
		// moderate state counts: full recompute keeps it simple & correct).
		apply(newCode, s)
		if taken {
			apply(oldCode, other)
		}
		newCost := WeightedHamming(enc, p)
		delta = newCost - cost
		accept := delta < 0 || rng.Float64() < temp*0.5
		if accept {
			cost = newCost
			delete(used, oldCode)
			used[newCode] = s
			if taken {
				used[oldCode] = other
			}
			if cost < bestCost {
				bestCost = cost
				copy(best.Codes, enc.Codes)
			}
		} else {
			// Revert.
			apply(oldCode, s)
			if taken {
				apply(newCode, other)
			}
		}
	}
	return best
}

// ReEncode improves an existing encoding in place of starting from
// binary — the §III-H reencoding scenario where a manual or legacy
// assignment is the starting point. The result keeps the start
// encoding's width and the reset state's code.
func ReEncode(f *FSM, p [][]float64, start *Encoding, iters int, rng *rand.Rand) *Encoding {
	if f.NumStates < 2 {
		return &Encoding{Width: start.Width, Codes: append([]uint64{}, start.Codes...)}
	}
	enc := &Encoding{Width: start.Width, Codes: append([]uint64{}, start.Codes...)}
	used := make(map[uint64]int)
	for s, c := range enc.Codes {
		used[c] = s
	}
	cost := WeightedHamming(enc, p)
	best := &Encoding{Width: enc.Width, Codes: append([]uint64{}, enc.Codes...)}
	bestCost := cost
	if iters <= 0 {
		iters = 4000
	}
	temp := 1.0
	allCodes := 1 << uint(enc.Width)
	for it := 0; it < iters; it++ {
		temp *= 0.999
		s := 1 + rng.Intn(f.NumStates-1)
		oldCode := enc.Codes[s]
		newCode := uint64(rng.Intn(allCodes))
		if newCode == enc.Codes[0] || newCode == oldCode {
			continue
		}
		other, taken := used[newCode]
		enc.Codes[s] = newCode
		if taken {
			enc.Codes[other] = oldCode
		}
		newCost := WeightedHamming(enc, p)
		if newCost < cost || rng.Float64() < temp*0.5 {
			cost = newCost
			delete(used, oldCode)
			used[newCode] = s
			if taken {
				used[oldCode] = other
			}
			if cost < bestCost {
				bestCost = cost
				copy(best.Codes, enc.Codes)
			}
		} else {
			enc.Codes[s] = oldCode
			if taken {
				enc.Codes[other] = newCode
			}
		}
	}
	return best
}
