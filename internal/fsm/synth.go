package fsm

import (
	"fmt"

	"hlpower/internal/budget"
	"hlpower/internal/cover"
	"hlpower/internal/logic"
)

// SynthGroups names the accounting groups of a synthesized controller.
const (
	GroupNextState = "ctrl-next"
	GroupOutput    = "ctrl-out"
	GroupStateReg  = "ctrl-reg"
)

// SynthesizeMultilevel is Synthesize with algebraically factored
// next-state and output logic (cover.Factor): the §III-H path from
// symbolic covers to a multilevel network, usually smaller than the
// two-level form.
func SynthesizeMultilevel(f *FSM, enc *Encoding) (*logic.Netlist, error) {
	return synthesize(nil, f, enc, true)
}

// Synthesize translates the encoded machine into a gate-level netlist:
// two-level next-state and output logic (each cover minimized with our
// Quine–McCluskey engine) plus a state register bank. Unused codes are
// don't-cares treated as off-set. The register reset value is the code of
// state 0.
func Synthesize(f *FSM, enc *Encoding) (*logic.Netlist, error) {
	return synthesize(nil, f, enc, false)
}

// SynthesizeBudget is Synthesize governed by a resource budget: the
// per-bit cover minimizations charge the budget and fall back to the
// heuristic reducer when it trips, in which case degraded is true and
// the netlist is functionally correct but may use larger covers.
func SynthesizeBudget(b *budget.Budget, f *FSM, enc *Encoding) (n *logic.Netlist, degraded bool, err error) {
	n, err = synthesizeB(b, f, enc, false, &degraded)
	return n, degraded, err
}

func synthesize(b *budget.Budget, f *FSM, enc *Encoding, multilevel bool) (*logic.Netlist, error) {
	var degraded bool
	return synthesizeB(b, f, enc, multilevel, &degraded)
}

func synthesizeB(bud *budget.Budget, f *FSM, enc *Encoding, multilevel bool, degraded *bool) (*logic.Netlist, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := enc.Validate(f.NumStates); err != nil {
		return nil, err
	}
	nVars := f.NumInputs + enc.Width
	if nVars > 24 {
		return nil, fmt.Errorf("fsm: %d input+state bits too many for two-level synthesis", nVars)
	}
	n := logic.New()
	in := n.AddInputBus("x", f.NumInputs)

	// State registers with placeholder D inputs, patched after the
	// next-state logic exists. Reset to state 0's code.
	zero := n.AddG(logic.Const0, GroupStateReg)
	stateQ := make(logic.Bus, enc.Width)
	for b := range stateQ {
		stateQ[b] = n.AddG(logic.DFF, GroupStateReg, zero)
		n.SetInit(stateQ[b], enc.Codes[0]>>uint(b)&1 == 1)
		n.SetName(stateQ[b], fmt.Sprintf("state[%d]", b))
	}

	vars := append(append(logic.Bus{}, in...), stateQ...)

	// Collect on-set minterms per next-state bit and per output bit over
	// (input bits, state bits).
	nextOn := make([][]uint64, enc.Width)
	outOn := make([][]uint64, f.NumOutputs)
	nsym := f.NumSymbols()
	for s := 0; s < f.NumStates; s++ {
		codeBits := enc.Codes[s] << uint(f.NumInputs)
		for sym := 0; sym < nsym; sym++ {
			minterm := uint64(sym) | codeBits
			nextCode := enc.Codes[f.Next[s][sym]]
			for b := 0; b < enc.Width; b++ {
				if nextCode>>uint(b)&1 == 1 {
					nextOn[b] = append(nextOn[b], minterm)
				}
			}
			outWord := f.Out[s][sym]
			for b := 0; b < f.NumOutputs; b++ {
				if outWord>>uint(b)&1 == 1 {
					outOn[b] = append(outOn[b], minterm)
				}
			}
		}
	}
	// Unused state codes are unreachable from reset: exploit them as
	// don't-cares when the expanded set stays tractable.
	var dcMinterms []uint64
	used := make(map[uint64]bool, f.NumStates)
	for _, c := range enc.Codes {
		used[c] = true
	}
	unusedCodes := (1 << uint(enc.Width)) - f.NumStates
	if unusedCodes > 0 && unusedCodes*nsym <= 2048 {
		for code := uint64(0); code < 1<<uint(enc.Width); code++ {
			if used[code] {
				continue
			}
			for sym := 0; sym < nsym; sym++ {
				dcMinterms = append(dcMinterms, uint64(sym)|code<<uint(f.NumInputs))
			}
		}
	}
	minimize := func(on []uint64) (*cover.Cover, error) {
		if bud != nil {
			cv, deg, err := cover.MinimizeDCBudget(bud, on, dcMinterms, nVars)
			if deg {
				*degraded = true
			}
			return cv, err
		}
		if len(dcMinterms) > 0 {
			return cover.MinimizeDC(on, dcMinterms, nVars)
		}
		return cover.Minimize(on, nVars)
	}
	build := func(cv *cover.Cover, group string) int {
		if multilevel {
			return logic.FromExpr(n, cover.Factor(cv), vars, group)
		}
		return logic.FromCover(n, cv, vars, group)
	}
	for b := 0; b < enc.Width; b++ {
		cv, err := minimize(nextOn[b])
		if err != nil {
			return nil, fmt.Errorf("fsm: next-state bit %d: %w", b, err)
		}
		n.Gates[stateQ[b]].Fanin[0] = build(cv, GroupNextState)
	}
	for b := 0; b < f.NumOutputs; b++ {
		cv, err := minimize(outOn[b])
		if err != nil {
			return nil, fmt.Errorf("fsm: output bit %d: %w", b, err)
		}
		o := build(cv, GroupOutput)
		n.SetName(o, fmt.Sprintf("out[%d]", b))
		n.MarkOutput(o)
	}
	return n, nil
}
