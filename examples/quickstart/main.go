// Quickstart: estimate the power of an RT-level component three ways —
// gate-level simulation (ground truth), an RT-level macro-model, and the
// information-theoretic estimate — then let the Fig. 1 design-improvement
// loop rank two implementation options of a multiply-by-constant.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hlpower"
	"hlpower/internal/bitutil"
	"hlpower/internal/entropy"
	"hlpower/internal/macromodel"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	const width = 8

	// The component under estimation: an 8x8 array multiplier.
	mul := hlpower.NewMultiplier(width)
	a := trace.AR1(2000, width, 0.9, 0.2, rng) // a speech-like operand
	b := trace.Uniform(2000, width, rng)       // and a random one

	// 1) Gate-level ground truth.
	truth, err := mul.EnergyPerPair(a, b, sim.ZeroDelay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gate-level simulation:     %8.2f cap/cycle (ground truth)\n", truth)

	// 2) RT-level macro-model, characterized once on pseudorandom data
	//    and then evaluated without touching the netlist.
	trainA := trace.Uniform(1500, width, rng)
	trainB := trace.Uniform(1500, width, rng)
	model, err := macromodel.FitIO(mul, trainA, trainB, sim.ZeroDelay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input-output macro-model:  %8.2f cap/cycle\n", model.PredictStream(a, b))

	// 3) Information-theoretic estimate: only entropies and total
	//    capacitance, no simulation of the target stream needed beyond a
	//    quick functional run for output entropy.
	res, err := mul.SimulateStream(a, b, sim.ZeroDelay)
	if err != nil {
		log.Fatal(err)
	}
	outWords := make([]uint64, len(res.Outputs))
	for i, o := range res.Outputs {
		outWords[i] = bitutil.FromBits(o)
	}
	nIn, nOut := 2*width, len(mul.Net.Outputs)
	hin := trace.BitEntropy(append(append([]uint64{}, a...), b...), width)
	havg := entropy.MarculescuHavg(nIn, nOut,
		hin/float64(width),
		trace.BitEntropy(outWords, nOut)/float64(nOut))
	fmt.Printf("entropy-based estimate:    %8.2f cap/cycle\n",
		entropy.Power(mul.Net.TotalCapacitance(), havg, 1, 1)*2)

	// Design-improvement loop: multiply by the constant 12 — general
	// multiplier or shift-add? Rank by estimated power.
	rank := hlpower.Rank([]hlpower.Candidate{
		{Name: "array multiplier (x12)", Estimator: hlpower.EstimatorFunc{
			EstimatorName: "gate-sim", EstimatorLevel: hlpower.Gate,
			Fn: func() (float64, error) {
				k := trace.Constant(len(a), width, 12)
				return mul.EnergyPerPair(a, k, sim.EventDriven)
			},
		}},
		{Name: "shift-add network (x12)", Estimator: hlpower.EstimatorFunc{
			EstimatorName: "gate-sim", EstimatorLevel: hlpower.Gate,
			Fn: func() (float64, error) {
				n := hlpower.NewNetlist()
				in := n.AddInputBus("x", width)
				out := rtlib.ConstShiftAdd(n, in, 12, 2*width, "exec")
				n.MarkOutputBus(out)
				r, err := sim.Run(n, func(c int) []bool {
					return bitutil.ToBits(a[c], width)
				}, len(a), sim.Options{Model: sim.EventDriven})
				if err != nil {
					return 0, err
				}
				return r.SwitchedCap / float64(r.Cycles), nil
			},
		}},
	})
	fmt.Printf("\ndesign-improvement loop (multiply by 12):\n%s", rank)
	best, err := rank.Best()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected: %s\n", best.Candidate.Name)
}
