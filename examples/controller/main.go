// controller walks the §III-H flow: a state machine is encoded four
// ways, synthesized to gates, and measured; then the low-power extras —
// state minimization, clock gating, and decomposition into two
// selectively-clocked submachines — are applied and compared.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hlpower/internal/bitutil"
	"hlpower/internal/fsm"
	"hlpower/internal/lopt"
	"hlpower/internal/sim"
)

func main() {
	rng := rand.New(rand.NewSource(9))
	f := fsm.Random(12, 2, 2, 0.15, rng)
	p, err := f.TransitionProbabilities(nil)
	if err != nil {
		log.Fatal(err)
	}

	symbols := make([]int, 1200)
	for i := range symbols {
		symbols[i] = rng.Intn(f.NumSymbols())
	}
	prov := func(c int) []bool { return bitutil.ToBits(uint64(symbols[c]), f.NumInputs) }

	fmt.Println("state encoding (12-state controller, event-driven gate-level power):")
	fmt.Printf("%-12s %14s %14s %10s\n", "encoding", "model cost", "netlist cap", "gates")
	for _, e := range []struct {
		name string
		enc  *fsm.Encoding
	}{
		{"binary", fsm.BinaryEncoding(f.NumStates)},
		{"gray", fsm.GrayEncoding(f.NumStates)},
		{"one-hot", fsm.OneHotEncoding(f.NumStates)},
		{"low-power", fsm.LowPowerEncoding(f, p, 8000, rng)},
	} {
		net, err := fsm.Synthesize(f, e.enc)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(net, prov, len(symbols), sim.Options{Model: sim.EventDriven, TrackClock: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %14.3f %14.1f %10d\n",
			e.name, fsm.WeightedHamming(e.enc, p), res.SwitchedCap, net.NumGates())
	}

	// State minimization.
	min, _ := fsm.Minimize(f)
	fmt.Printf("\nstate minimization: %d -> %d states\n", f.NumStates, min.NumStates)

	// Clock gating on a hold-heavy controller.
	hold := &fsm.FSM{NumInputs: 1, NumOutputs: 2, NumStates: 8,
		Next: make([][]int, 8), Out: make([][]uint64, 8)}
	for s := 0; s < 8; s++ {
		hold.Next[s] = []int{s, (s + 1) % 8}
		hold.Out[s] = []uint64{uint64(s & 3), uint64(s & 3)}
	}
	enc := fsm.BinaryEncoding(8)
	plain, err := fsm.Synthesize(hold, enc)
	if err != nil {
		log.Fatal(err)
	}
	gated, err := lopt.GatedController(hold, enc)
	if err != nil {
		log.Fatal(err)
	}
	hsym := make([][]bool, 1200)
	for i := range hsym {
		hsym[i] = []bool{rng.Float64() < 0.2}
	}
	a, _ := sim.Run(plain, sim.VectorInputs(hsym), len(hsym), sim.Options{Model: sim.EventDriven, TrackClock: true})
	b, _ := sim.Run(gated, sim.VectorInputs(hsym), len(hsym), sim.Options{Model: sim.EventDriven, TrackClock: true, GateClock: true})
	fmt.Printf("clock gating (80%% hold): %.1f -> %.1f switched cap (clock tree: %.1f -> %.1f)\n",
		a.SwitchedCap, b.SwitchedCap, a.ByGroup["clock"], b.ByGroup["clock"])

	// Decomposition into two selectively clocked submachines.
	two := twoCluster()
	dist := []float64{0.4, 0.3, 0.25, 0.05}
	pp, err := two.TransitionProbabilities(dist)
	if err != nil {
		log.Fatal(err)
	}
	part := fsm.PartitionStates(two, pp, 6, rng)
	dec, err := fsm.Decompose(two, part)
	if err != nil {
		log.Fatal(err)
	}
	dsym := make([]int, 1000)
	for i := range dsym {
		if rng.Float64() < 0.96 {
			dsym[i] = rng.Intn(3)
		} else {
			dsym[i] = 3
		}
	}
	res, err := dec.Simulate(dsym, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposition: monolithic %.1f vs decomposed %.1f cap (%d handoffs, outputs match: %v)\n",
		res.MonolithicCap, res.DecomposedCap, res.Handoffs, res.OutputsMatch)
}

// twoCluster is a 10-state machine with two tightly coupled phases.
func twoCluster() *fsm.FSM {
	n := 10
	f := &fsm.FSM{NumInputs: 2, NumOutputs: 2, NumStates: n,
		Next: make([][]int, n), Out: make([][]uint64, n)}
	for s := 0; s < n; s++ {
		f.Next[s] = make([]int, 4)
		f.Out[s] = make([]uint64, 4)
		cluster := s / 5
		base := cluster * 5
		for sym := 0; sym < 4; sym++ {
			if sym == 3 {
				f.Next[s][sym] = (1-cluster)*5 + (s+1)%5
			} else {
				f.Next[s][sym] = base + (s+sym+1)%5
			}
			f.Out[s][sym] = uint64((s + sym) & 3)
		}
	}
	return f
}
