// lowpower_bus encodes the address trace of a real program (running on
// the repository's RISC simulator) with each §III-G bus code and reports
// the transition counts — the decision a memory-interface designer would
// make with this library.
package main

import (
	"fmt"
	"log"

	"hlpower/internal/bus"
	"hlpower/internal/isa"
)

func main() {
	// Generate a genuine address trace: the FIR program's data accesses.
	prog, err := isa.FIRFilter(8, 256)
	if err != nil {
		log.Fatal(err)
	}
	m := isa.NewMachine(isa.DefaultConfig())
	_, trace, err := m.Run(prog, true)
	if err != nil {
		log.Fatal(err)
	}
	var addrs []uint64
	for _, e := range trace {
		if e.Instr.Op.IsMem() {
			addrs = append(addrs, uint64(e.SrcA))
		}
	}
	fmt.Printf("program address trace: %d accesses\n\n", len(addrs))

	const w = 16
	train := addrs[:len(addrs)/2]
	test := addrs[len(addrs)/2:]
	codes := []bus.Encoder{
		&bus.Raw{Width: w},
		&bus.BusInvert{Width: w},
		&bus.GrayCode{Width: w},
		&bus.T0{Width: w},
		bus.NewWorkingZone(w, 4, 10),
		bus.TrainBeach(train, w, 4, 4),
	}
	fmt.Printf("%-14s %12s %10s\n", "code", "transitions", "per word")
	base := 0
	for i, e := range codes {
		tr := bus.Transitions(e, test)
		if i == 0 {
			base = tr
		}
		fmt.Printf("%-14s %12d %10.2f   (%.0f%% of binary)\n",
			e.Name(), tr, float64(tr)/float64(len(test)-1), 100*float64(tr)/float64(base))
	}
	fmt.Println("\nthe FIR inner loop interleaves coefficient, input, and output arrays —")
	fmt.Println("exactly the working-zone access pattern of §III-G")
}
