// firfilter walks the Table I flow end to end: an 11-tap FIR filter is
// first examined at the behavioral level (operation counts, schedule
// length before/after strength reduction), then measured at the gate
// level with per-component switched-capacitance accounting.
package main

import (
	"fmt"
	"log"

	"hlpower/internal/cdfg"
	"hlpower/internal/experiments"
)

func main() {
	coeffs := []int64{3, 7, 12, 21, 28, 31, 28, 21, 12, 7, 3}

	// Behavioral view.
	g := cdfg.FIR(coeffs)
	sr := cdfg.StrengthReduce(g)
	fmt.Println("behavioral view (11-tap FIR):")
	fmt.Printf("  direct:       ops=%v  critical path=%d  op-energy=%.1f\n",
		g.OpCounts(), g.CriticalPath(nil), g.TotalEnergy(nil))
	fmt.Printf("  shift-add:    ops=%v  critical path=%d  op-energy=%.1f\n",
		sr.OpCounts(), sr.CriticalPath(nil), sr.TotalEnergy(nil))

	// Verify the transformation preserved the filter.
	in := map[string]int64{}
	for i := range coeffs {
		in[fmt.Sprintf("x%d", i)] = int64(i*3 - 7)
	}
	yd, err := g.OutputValues(in)
	if err != nil {
		log.Fatal(err)
	}
	ys, err := sr.OutputValues(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  equivalence check: direct=%d shift-add=%d\n\n", yd[0], ys[0])

	// Gate-level Table I regeneration.
	rep, err := experiments.Run("E1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gate-level accounting (Table I):")
	fmt.Println(rep.Text)
}
