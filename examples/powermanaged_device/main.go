// powermanaged_device simulates the §III-B scenario: an event-driven
// device (think display server) under several shutdown policies, showing
// the oracle bound, the static-timeout baseline, and the predictive
// schemes' power/latency tradeoff.
package main

import (
	"fmt"
	"math/rand"

	"hlpower"
	"hlpower/internal/dpm"
)

func main() {
	dev := dpm.DefaultDevice()
	rng := rand.New(rand.NewSource(7))
	workload := dpm.Generate(dpm.DefaultWorkload(), rng)

	on := hlpower.SimulatePM(dev, dpm.AlwaysOn{}, workload)
	fmt.Printf("workload: %d active/idle periods, %.0f time units, %.0f%% idle\n",
		len(workload), on.TotalTime, 100*on.IdleTime/on.TotalTime)
	fmt.Printf("upper bound on improvement (1+TI/TA): %.1fx\n\n", dpm.MaxImprovement(workload))

	policies := []dpm.Policy{
		dpm.AlwaysOn{},
		&dpm.StaticTimeout{T: 5},
		&dpm.Threshold{ActiveThreshold: 0.5},
		&dpm.Regression{Dev: dev},
		&dpm.HwangWu{Dev: dev, Prewake: true},
		&dpm.Oracle{Dev: dev, Workload: workload},
	}
	fmt.Printf("%-24s %10s %12s %14s %10s\n", "policy", "energy", "improvement", "delay penalty", "shutdowns")
	for _, pol := range policies {
		res := hlpower.SimulatePM(dev, pol, workload)
		fmt.Printf("%-24s %10.1f %11.2fx %13.1f%% %10d\n",
			pol.Name(), res.Energy, dpm.Improvement(on, res), 100*res.DelayPenalty, res.Shutdowns)
	}
	fmt.Println("\npredictive shutdown sleeps immediately on predicted-long idles instead of")
	fmt.Println("burning the timeout in every one — the §III-B argument, reproduced")
}
