package hlpower

import (
	"errors"
	"math/rand"
	"testing"

	"hlpower/internal/bitutil"
	"hlpower/internal/bus"
	"hlpower/internal/dpm"
	"hlpower/internal/logic"
	"hlpower/internal/trace"
)

func TestFacadeNetlistFlow(t *testing.T) {
	n := NewNetlist()
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.MarkOutput(n.Add(logic.And, a, b))
	res, err := Simulate(n, func(c int) []bool {
		return []bool{c%2 == 0, true}
	}, 10, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchedCap <= 0 {
		t.Error("toggling input should switch capacitance")
	}
}

func TestFacadeModules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	add := NewAdder(6)
	mul := NewMultiplier(6)
	as := trace.Uniform(100, 6, rng)
	bs := trace.Uniform(100, 6, rng)
	ea, err := add.EnergyPerPair(as, bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	em, err := mul.EnergyPerPair(as, bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if em <= ea {
		t.Error("multiplier should dissipate more than adder")
	}
}

func TestFacadeRanking(t *testing.T) {
	r := Rank([]Candidate{
		{Name: "good", Estimator: EstimatorFunc{
			EstimatorName: "m", EstimatorLevel: RTL,
			Fn: func() (float64, error) { return 1, nil }}},
		{Name: "bad", Estimator: EstimatorFunc{
			EstimatorName: "m", EstimatorLevel: RTL,
			Fn: func() (float64, error) { return 0, errors.New("x") }}},
	})
	best, err := r.Best()
	if err != nil || best.Candidate.Name != "good" {
		t.Errorf("Best = %v, %v", best.Candidate.Name, err)
	}
}

func TestFacadeBusAndPM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	stream := trace.Sequential(100, 8, 0)
	var enc BusEncoder = &bus.GrayCode{Width: 8}
	if got := BusTransitionsPerWord(enc, stream); got > 1.01 {
		t.Errorf("gray per-word = %v", got)
	}
	w := dpm.Generate(dpm.DefaultWorkload(), rng)
	res := SimulatePM(dpm.DefaultDevice(), dpm.AlwaysOn{}, w)
	if res.Energy <= 0 {
		t.Error("always-on energy must be positive")
	}
	_ = bitutil.Mask(4)
}
