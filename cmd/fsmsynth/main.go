// Command fsmsynth reads a KISS2 state machine, synthesizes it to gates
// under several state encodings, reports event-driven switched
// capacitance for each, and optionally writes the best netlist as BLIF —
// the §III-H flow as a tool.
//
// Usage:
//
//	fsmsynth -kiss machine.kiss2 -cycles 2000 -blif out.blif
//	fsmsynth -demo            # run on a built-in example machine
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hlpower/internal/bitutil"
	"hlpower/internal/fsm"
	"hlpower/internal/logic"
	"hlpower/internal/sim"
)

func main() {
	kissPath := flag.String("kiss", "", "input machine in kiss2 format")
	demo := flag.Bool("demo", false, "use a built-in example machine")
	cycles := flag.Int("cycles", 2000, "simulation length")
	blifPath := flag.String("blif", "", "write the lowest-power netlist as BLIF")
	multilevel := flag.Bool("ml", false, "factor covers into multilevel logic")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "fsmsynth: internal error: %v\n", r)
			os.Exit(1)
		}
	}()
	if *cycles < 1 {
		fmt.Fprintf(os.Stderr, "fsmsynth: cycle count %d must be positive\n", *cycles)
		os.Exit(2)
	}

	var f *fsm.FSM
	switch {
	case *demo:
		f = demoMachine()
	case *kissPath != "":
		file, err := os.Open(*kissPath)
		if err != nil {
			fatal(err)
		}
		defer file.Close()
		f, err = fsm.ParseKISS(file)
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "fsmsynth: need -kiss <file> or -demo")
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	min, _ := fsm.Minimize(f)
	fmt.Printf("machine: %d states (%d after minimization), %d inputs, %d outputs\n",
		f.NumStates, min.NumStates, f.NumInputs, f.NumOutputs)
	f = min

	p, err := f.TransitionProbabilities(nil)
	if err != nil {
		fatal(err)
	}
	symbols := make([]int, *cycles)
	for i := range symbols {
		symbols[i] = rng.Intn(f.NumSymbols())
	}
	prov := func(c int) []bool { return bitutil.ToBits(uint64(symbols[c]), f.NumInputs) }

	synth := fsm.Synthesize
	if *multilevel {
		synth = fsm.SynthesizeMultilevel
	}
	encodings := []struct {
		name string
		enc  *fsm.Encoding
	}{
		{"binary", fsm.BinaryEncoding(f.NumStates)},
		{"gray", fsm.GrayEncoding(f.NumStates)},
		{"one-hot", fsm.OneHotEncoding(f.NumStates)},
		{"low-power", fsm.LowPowerEncoding(f, p, 8000, rng)},
	}
	fmt.Printf("\n%-12s %10s %12s %14s %14s\n", "encoding", "gates", "model cost", "switched cap", "power (V=1,f=1)")
	var bestNet *logic.Netlist
	bestCap := -1.0
	bestName := ""
	for _, e := range encodings {
		net, err := synth(f, e.enc)
		if err != nil {
			fmt.Printf("%-12s synthesis failed: %v\n", e.name, err)
			continue
		}
		res, err := sim.Run(net, prov, len(symbols), sim.Options{Model: sim.EventDriven, TrackClock: true})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %10d %12.3f %14.1f %14.4f\n",
			e.name, net.NumGates(), fsm.WeightedHamming(e.enc, p), res.SwitchedCap, res.Power())
		if bestCap < 0 || res.SwitchedCap < bestCap {
			bestCap, bestNet, bestName = res.SwitchedCap, net, e.name
		}
	}
	fmt.Printf("\nbest: %s\n", bestName)
	if *blifPath != "" && bestNet != nil {
		out, err := os.Create(*blifPath)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
		if err := logic.WriteBLIF(out, bestNet, "fsmsynth_"+bestName); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *blifPath)
	}
}

// demoMachine is a 10-state controller with phase structure.
func demoMachine() *fsm.FSM {
	n := 10
	f := &fsm.FSM{NumInputs: 2, NumOutputs: 2, NumStates: n,
		Next: make([][]int, n), Out: make([][]uint64, n)}
	for s := 0; s < n; s++ {
		f.Next[s] = make([]int, 4)
		f.Out[s] = make([]uint64, 4)
		for sym := 0; sym < 4; sym++ {
			switch sym {
			case 0:
				f.Next[s][sym] = s // hold
			case 3:
				f.Next[s][sym] = (s + 5) % n // phase jump
			default:
				f.Next[s][sym] = (s + sym) % n
			}
			f.Out[s][sym] = uint64((s ^ sym) & 3)
		}
	}
	return f
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fsmsynth: %v\n", err)
	os.Exit(1)
}
