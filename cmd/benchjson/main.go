// Command benchjson runs the key serial-vs-parallel benchmarks of the
// estimation engine in-process (via testing.Benchmark, no go-test
// subprocess) and emits a machine-readable BENCH_<date>.json snapshot.
// CI runs it as a non-blocking job so the repository accumulates a
// performance trajectory; compare files across dates to see whether a
// change moved the hot paths.
//
// Usage:
//
//	benchjson                 # full workload, writes BENCH_<date>.json
//	benchjson -short          # reduced workload (CI smoke)
//	benchjson -out perf.json  # explicit output path
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"hlpower"
	"hlpower/internal/budget"
	"hlpower/internal/core"
	"hlpower/internal/isa"
	"hlpower/internal/jobs"
	"hlpower/internal/logic"
	"hlpower/internal/powerd"
	"hlpower/internal/recipe"
	"hlpower/internal/rtlib"
	"hlpower/internal/service"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name  string `json:"name"`
	Iters int    `json:"iterations"`
	// Variant classifies the execution engine: "serial" (interpreted,
	// one goroutine), "packed" (64-lane bit-packed kernel, one
	// goroutine), "fused" (compiled superinstruction artifact),
	// "codegen" (specialized per-netlist evaluator), or "parallel"
	// (sharded worker pool).
	Variant string `json:"variant,omitempty"`
	// GOMAXPROCS is the scheduler width this entry was measured under.
	// Parallel variants are always recorded pinned to 1 (the scheduling
	// floor, comparable across hosts) and, when the host has more than
	// one CPU, again at the real core count under a "/mp" name suffix —
	// the pair separates algorithmic overhead from actual scaling.
	GOMAXPROCS  int     `json:"gomaxprocs,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// MBPerSec is workload throughput in lane-evaluations (one bit per
	// gate per cycle), comparable across kernels of the same workload.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// Speedup is ns_per_op(serial baseline) / ns_per_op(this), present
	// on packed and parallel variants.
	Speedup float64 `json:"speedup_vs_serial,omitempty"`
}

// Snapshot is the whole BENCH_<date>.json document.
type Snapshot struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Short      bool   `json:"short_workload"`
	// Note flags readings that need interpretation — e.g. on a
	// GOMAXPROCS=1 host the parallel variants necessarily read ≈1.0×,
	// which is a property of the machine, not a regression.
	Note    string  `json:"note,omitempty"`
	Results []Entry `json:"results"`
}

func main() {
	short := flag.Bool("short", false, "reduced workload for CI smoke runs")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	flag.Parse()

	cycles, width, cands := 8192, 8, 8
	if *short {
		cycles, width, cands = 2048, 6, 4
	}

	snap := Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Short:      *short,
	}
	// Parallel variants are measured pinned to gomaxprocs=1 and, when
	// the host has real cores, again at full width ("/mp" entries).
	multiProcs := 0
	if n := runtime.NumCPU(); n > 1 {
		multiProcs = n
	}
	if multiProcs == 0 {
		snap.Note = "single-cpu host: the multi-core (\"/mp\") pass is skipped and parallel " +
			"speedup_vs_serial ≈1.0x is expected (no cores to shard across), not a " +
			"regression; the packed variant is the single-thread speedup to watch"
	}
	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}

	simNet, simInputs, simWords := mcWorkload(width, cycles)
	simBytes := int64(cycles) * int64(len(simNet.Gates)) / 8
	serialSim := measure("sim/serial", simBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(simNet, simInputs, cycles, sim.Options{}); err != nil {
				fatal(err)
			}
		}
	})
	serialSim.Variant = "serial"
	snap.Results = append(snap.Results, serialSim)

	packedSim := measure("sim/packed", simBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sim.RunPacked(simNet, simInputs, cycles, sim.Options{})
			if err != nil {
				fatal(err)
			}
			if res.Kernel != sim.KernelPacked {
				fatal(fmt.Errorf("packed run fell back: %q", res.Fallback))
			}
		}
	})
	packedSim.Variant = "packed"
	packedSim.Speedup = round3(serialSim.NsPerOp / packedSim.NsPerOp)
	snap.Results = append(snap.Results, packedSim)

	// Fused superinstruction tier: the same workload through a compiled
	// artifact — fusion pass, pooled scratch, pre-packed input words,
	// lean result — the steady-state shape powerd serves. Compilation
	// happens outside the timed region (the serving layer amortizes it
	// across requests via the artifact cache); the power figure is
	// asserted bit-identical to the unfused kernel before timing starts.
	simComp, err := sim.Compile(simNet, sim.Options{})
	if err != nil {
		fatal(err)
	}
	if simComp.FusedAbsorbed() == 0 {
		fatal(fmt.Errorf("sim/fused: multiplier workload fused nothing"))
	}
	unfusedRef, err := sim.RunPacked(simNet, simInputs, cycles, sim.Options{})
	if err != nil {
		fatal(err)
	}
	fusedRef, err := simComp.Run(nil, simInputs, cycles, sim.RunOptions{Workers: 1, Words: simWords, Lean: true})
	if err != nil {
		fatal(err)
	}
	if math.Float64bits(unfusedRef.Power()) != math.Float64bits(fusedRef.Power()) {
		fatal(fmt.Errorf("sim/fused: power %v differs from unfused %v", fusedRef.Power(), unfusedRef.Power()))
	}
	runFused := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := simComp.Run(nil, simInputs, cycles, sim.RunOptions{Workers: 1, Words: simWords, Lean: true, NoCodegen: true})
			if err != nil {
				fatal(err)
			}
			if res.Kernel != sim.KernelFused {
				fatal(fmt.Errorf("fused run fell back: %q", res.Fallback))
			}
		}
	}

	// Codegen tier: the same artifact after hotness promotion — a
	// specialized evaluator with dispatch resolved at build time and
	// extraction baked against the concrete net layout. The build runs
	// outside the timed region (the serving layer promotes hot artifacts
	// on a background goroutine), and the power figure is asserted
	// bit-identical to the fused tier before timing starts.
	if err := simComp.BuildCodegen(); err != nil {
		fatal(err)
	}
	codegenRef, err := simComp.Run(nil, simInputs, cycles, sim.RunOptions{Workers: 1, Words: simWords, Lean: true})
	if err != nil {
		fatal(err)
	}
	if codegenRef.Kernel != sim.KernelCodegen {
		fatal(fmt.Errorf("sim/codegen: served by %q after promotion", codegenRef.Kernel))
	}
	if math.Float64bits(codegenRef.Power()) != math.Float64bits(fusedRef.Power()) {
		fatal(fmt.Errorf("sim/codegen: power %v differs from fused %v", codegenRef.Power(), fusedRef.Power()))
	}
	runCodegen := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := simComp.Run(nil, simInputs, cycles, sim.RunOptions{Workers: 1, Words: simWords, Lean: true})
			if err != nil {
				fatal(err)
			}
			if res.Kernel != sim.KernelCodegen {
				fatal(fmt.Errorf("codegen run fell back: %q", res.Fallback))
			}
		}
	}

	// The fused/codegen gap is small relative to host noise, so the pair
	// is measured as interleaved passes with the minimum kept per entry —
	// min is the least-noise estimator for a CPU-bound kernel, and
	// interleaving keeps slow host phases from landing on one side.
	const tierPasses = 3
	fusedSim := measure("sim/fused", simBytes, runFused)
	codegenSim := measure("sim/codegen", simBytes, runCodegen)
	for p := 1; p < tierPasses; p++ {
		if e := measure("sim/fused", simBytes, runFused); e.NsPerOp < fusedSim.NsPerOp {
			fusedSim = e
		}
		if e := measure("sim/codegen", simBytes, runCodegen); e.NsPerOp < codegenSim.NsPerOp {
			codegenSim = e
		}
	}
	fusedSim.Variant = "fused"
	fusedSim.Speedup = round3(serialSim.NsPerOp / fusedSim.NsPerOp)
	snap.Results = append(snap.Results, fusedSim)
	codegenSim.Variant = "codegen"
	codegenSim.Speedup = round3(serialSim.NsPerOp / codegenSim.NsPerOp)
	snap.Results = append(snap.Results, codegenSim)

	for _, w := range []int{2, 4, 8} {
		w := w
		for _, procs := range procsPasses(multiProcs) {
			e := measureAt(procs, mpName(fmt.Sprintf("sim/parallel/w%d", w), procs, multiProcs), simBytes, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := sim.RunParallel(nil, simNet, simInputs, cycles, sim.ParallelOptions{Workers: w})
					if err != nil {
						fatal(err)
					}
				}
			})
			e.Variant = "parallel"
			e.Speedup = round3(serialSim.NsPerOp / e.NsPerOp)
			snap.Results = append(snap.Results, e)
		}
	}

	candidates := rankCandidates(cands, width, cycles/8)
	serialRank := measure("rank/serial", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RankBudget(nil, candidates).Best(); err != nil {
				fatal(err)
			}
		}
	})
	serialRank.Variant = "serial"
	snap.Results = append(snap.Results, serialRank)
	for _, w := range []int{2, 4, 8} {
		w := w
		for _, procs := range procsPasses(multiProcs) {
			e := measureAt(procs, mpName(fmt.Sprintf("rank/parallel/w%d", w), procs, multiProcs), 0, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.RankParallel(nil, w, candidates).Best(); err != nil {
						fatal(err)
					}
				}
			})
			e.Variant = "parallel"
			e.Speedup = round3(serialRank.NsPerOp / e.NsPerOp)
			snap.Results = append(snap.Results, e)
		}
	}

	// Content-addressed memoization on the simulate path: memo/miss
	// computes under a unique key every op, memo/hit replays one warm
	// entry (key derivation + lookup + defensive clone). The hit entry's
	// speedup field is miss/hit — the factor a repeated request saves.
	memoMod := rtlib.NewMultiplier(6)
	const memoCycles = 512
	memoProv := func(salt uint64) func(int) []bool {
		rng := rand.New(rand.NewSource(int64(salt)))
		as := trace.Uniform(memoCycles, 6, rng)
		bs := trace.Uniform(memoCycles, 6, rng)
		return func(c int) []bool { return memoMod.InputVector(as[c], bs[c]) }
	}
	memoCache := hlpower.NewEstimateCache(hlpower.EstimateCacheOptions{})
	salt := uint64(2)
	missEntry := measure("memo/miss", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prov := memoProv(salt)
			salt++
			if _, err := hlpower.SimulateMemo(memoCache, nil, memoMod.Net, prov, memoCycles, hlpower.SimOptions{}); err != nil {
				fatal(err)
			}
		}
	})
	missEntry.Variant = "miss"
	snap.Results = append(snap.Results, missEntry)
	warmProv := memoProv(1)
	if _, err := hlpower.SimulateMemo(memoCache, nil, memoMod.Net, warmProv, memoCycles, hlpower.SimOptions{}); err != nil {
		fatal(err)
	}
	hitEntry := measure("memo/hit", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hlpower.SimulateMemo(memoCache, nil, memoMod.Net, warmProv, memoCycles, hlpower.SimOptions{}); err != nil {
				fatal(err)
			}
		}
	})
	hitEntry.Variant = "hit"
	hitEntry.Speedup = round3(missEntry.NsPerOp / hitEntry.NsPerOp)
	snap.Results = append(snap.Results, hitEntry)

	// Batched pipeline vs looped single calls, over a live in-process
	// powerd server with memoization disabled so both sides pay the real
	// estimation path every time. The workload is the design-space-sweep
	// shape the batch API exists for: gate-level Monte Carlo items
	// fanned across three circuits and three cycle depths with distinct
	// seeds (so nothing collapses to a cache hit). Looped, every request
	// rebuilds and recompiles its netlist before simulating; fused, the
	// three (circuit, width) groups compile once and the items ride the
	// shared artifact. batch/looped fires one HTTP request per item
	// while batch/fused submits the identical items as one /v1/batch.
	// The speedup field on the fused entry is the requests-per-second
	// factor the batch pipeline buys — the >10x acceptance gate of the
	// batched-pipeline work.
	batchN := 1024
	if *short {
		batchN = 256
	}
	batchSrv := powerd.NewServer(powerd.Config{
		QueueDepth:     256,
		RequestTimeout: time.Minute,
		MemoMaxBytes:   -1,
	})
	batchTS := httptest.NewServer(batchSrv.Handler())
	batchClient := batchTS.Client()
	batchCircuits := []struct {
		name  string
		width int
	}{{"adder", 6}, {"multiplier", 6}, {"subtractor", 6}}
	batchCycles := []int{16, 32, 64}
	batchItems := make([]service.BatchItem, batchN)
	for i := range batchItems {
		c := batchCircuits[i%len(batchCircuits)]
		batchItems[i] = service.BatchItem{Op: service.OpSimulate, Simulate: &service.SimulateRequest{
			Circuit: c.name, Width: c.width, Cycles: batchCycles[(i/len(batchCircuits))%len(batchCycles)], Seed: int64(i),
		}}
	}
	batchPost := func(path string, body any) []byte {
		buf, err := json.Marshal(body)
		if err != nil {
			fatal(err)
		}
		resp, err := batchClient.Post(batchTS.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fatal(err)
		}
		if resp.StatusCode != 200 {
			fatal(fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, data))
		}
		return data
	}
	// Sanity-check the fused path answers every item before timing it.
	var fusedResp service.BatchResponse
	if err := json.Unmarshal(batchPost("/v1/batch", service.BatchRequest{Items: batchItems}), &fusedResp); err != nil {
		fatal(err)
	}
	if len(fusedResp.Items) != batchN || fusedResp.Failed != 0 {
		fatal(fmt.Errorf("batch warmup: %d items, %d failed", len(fusedResp.Items), fusedResp.Failed))
	}
	loopedEntry := measure("batch/looped", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, it := range batchItems {
				batchPost("/v1/simulate", it.Simulate)
			}
		}
	})
	loopedEntry.Variant = "looped"
	snap.Results = append(snap.Results, loopedEntry)
	fusedEntry := measure("batch/fused", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batchPost("/v1/batch", service.BatchRequest{Items: batchItems})
		}
	})
	fusedEntry.Variant = "fused"
	fusedEntry.Speedup = round3(loopedEntry.NsPerOp / fusedEntry.NsPerOp)
	snap.Results = append(snap.Results, fusedEntry)
	batchTS.Close()

	// Durable-job engine: per-candidate cost of one recipe-search step
	// through the full engine path — candidate derivation, pass
	// application, functional-equivalence verification, power
	// evaluation, and amortized checkpointing. Each op runs a complete
	// job under a distinct seed (content-keyed ids would otherwise
	// replay); ns_per_op is per candidate, not per job.
	optCands := cands
	optMgr := jobs.New(jobs.Config{Workers: 1, QueueDepth: 4, CheckpointEvery: 4})
	optSeed := int64(1)
	optEntry := measure("optimize/recipe-step", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := optMgr.Submit(jobs.Params{
				Spec:          recipe.Spec{Kind: recipe.KindCircuit, Circuit: "adder", Width: 4},
				Seed:          optSeed,
				Candidates:    optCands,
				EvalCycles:    128,
				VerifyCycles:  64,
				MaxRecipeLen:  4,
				EvalSteps:     50_000_000,
				CheckInterval: 256,
			})
			if err != nil {
				fatal(err)
			}
			optSeed++
			ch, ok := optMgr.Done(st.ID)
			if !ok {
				fatal(fmt.Errorf("job %s not attached", st.ID))
			}
			<-ch
			final, _ := optMgr.Get(st.ID)
			if final == nil || final.Phase != jobs.PhaseDone {
				fatal(fmt.Errorf("job %s did not complete: %+v", st.ID, final))
			}
		}
	})
	optEntry.NsPerOp = round3(optEntry.NsPerOp / float64(optCands))
	snap.Results = append(snap.Results, optEntry)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), time.Minute)
	if err := optMgr.Drain(drainCtx); err != nil {
		fatal(err)
	}
	cancelDrain()

	// Architectural simulator per-step cost over the predecoded
	// dispatch tables; ns_per_op here is per retired instruction, not
	// per program run.
	prog, err := isa.DotProduct(64)
	if err != nil {
		fatal(err)
	}
	isaCfg := isa.DefaultConfig()
	warmMachine := isa.NewMachine(isaCfg)
	isaState, _, err := warmMachine.Run(prog, false)
	if err != nil {
		fatal(err)
	}
	isaEntry := measure("isa/step", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := isa.NewMachine(isaCfg)
			if _, _, err := m.Run(prog, false); err != nil {
				fatal(err)
			}
		}
	})
	isaEntry.NsPerOp = round3(isaEntry.NsPerOp / float64(isaState.Instructions))
	snap.Results = append(snap.Results, isaEntry)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, GOMAXPROCS=%d)\n", path, len(snap.Results), snap.GOMAXPROCS)
	for _, e := range snap.Results {
		if e.Speedup > 0 {
			fmt.Printf("  %-20s %12.0f ns/op %8d allocs/op  %5.2fx\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.Speedup)
		} else {
			fmt.Printf("  %-20s %12.0f ns/op %8d allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
		}
	}
	if snap.Note != "" {
		fmt.Println("note:", snap.Note)
	}
}

// procsPasses lists the scheduler widths to measure a parallel variant
// under: always the pinned gomaxprocs=1 floor, plus the host's real
// core count when it has one (multiProcs=0 means single-cpu host).
func procsPasses(multiProcs int) []int {
	if multiProcs > 1 {
		return []int{1, multiProcs}
	}
	return []int{1}
}

// mpName suffixes the multi-core pass so both passes coexist in one
// snapshot and benchcompare diffs them by like-for-like name.
func mpName(base string, procs, multiProcs int) string {
	if procs == multiProcs && procs > 1 {
		return base + "/mp"
	}
	return base
}

// measureAt runs one benchmark pinned to the given GOMAXPROCS,
// restoring the ambient value afterwards, and records the width on the
// entry.
func measureAt(procs int, name string, bytes int64, fn func(b *testing.B)) Entry {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	e := measure(name, bytes, fn)
	e.GOMAXPROCS = procs
	return e
}

// measure runs one benchmark function in-process. bytes is the data
// volume one op processes (0 to skip throughput reporting).
func measure(name string, bytes int64, fn func(b *testing.B)) Entry {
	r := testing.Benchmark(func(b *testing.B) {
		if bytes > 0 {
			b.SetBytes(bytes)
		}
		fn(b)
	})
	e := Entry{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if bytes > 0 && r.NsPerOp() > 0 {
		e.MBPerSec = round3(float64(bytes) / float64(r.NsPerOp()) * 1e9 / (1 << 20))
	}
	return e
}

// mcWorkload builds the Monte Carlo simulation workload: a
// combinational array multiplier under a seeded random vector stream,
// in both per-cycle-vector and packed-word form (bit i of a cycle's
// word is input i, the packed kernel's layout).
func mcWorkload(width, cycles int) (*logic.Netlist, sim.InputProvider, sim.WordInputs) {
	m := rtlib.NewMultiplier(width)
	rng := rand.New(rand.NewSource(99))
	ins := 2 * width
	words := make([]uint64, cycles)
	vectors := make([][]bool, cycles)
	for c := range vectors {
		v := make([]bool, ins)
		for i := range v {
			v[i] = rng.Intn(2) == 1
			if v[i] {
				words[c] |= 1 << uint(i)
			}
		}
		vectors[c] = v
	}
	return m.Net, sim.VectorInputs(vectors), func(c int) uint64 { return words[c] }
}

// rankCandidates builds a candidate set whose estimators each run a
// gate-level simulation, the per-candidate evaluation shape of the
// design-improvement loop. Each candidate's netlist is compiled once
// outside the ranking loop — mirroring the serving layer, where
// candidates resolve through the shared artifact cache — so the timed
// region is pure kernel execution over pooled scratch: Workers:1
// forces the single-shard path whose direct budget charging matches
// the former one-shot RunPackedBudget semantics.
func rankCandidates(count, width, cycles int) []core.Candidate {
	var out []core.Candidate
	for i := 0; i < count; i++ {
		n, inputs, words := mcWorkload(width, cycles)
		comp, err := sim.Compile(n, sim.Options{})
		if err != nil {
			fatal(err)
		}
		name := fmt.Sprintf("cand-%d", i)
		out = append(out, core.Candidate{
			Name: name,
			Estimator: core.FuncB{
				EstimatorName: name, EstimatorLevel: core.Gate,
				Fn: func(b *budget.Budget) (float64, bool, error) {
					res, err := comp.Run(b, inputs, cycles, sim.RunOptions{Workers: 1, Words: words, Lean: true})
					if err != nil {
						return 0, false, err
					}
					return res.Power(), false, nil
				},
			},
		})
	}
	return out
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
