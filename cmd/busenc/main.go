// Command busenc compares the §III-G bus codes on a chosen stream type
// and width, printing transitions per transmitted word.
//
// Usage:
//
//	busenc -stream sequential -width 16 -n 5000
//	busenc -stream zones -zones 4
//	busenc -stream random|sequential|zones|correlated
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hlpower/internal/bus"
	"hlpower/internal/trace"
)

func main() {
	streamKind := flag.String("stream", "sequential", "stream type: random|sequential|zones|correlated")
	width := flag.Int("width", 16, "bus width in bits")
	n := flag.Int("n", 5000, "stream length")
	nZones := flag.Int("zones", 3, "working zones in the 'zones' stream")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "busenc: internal error: %v\n", r)
			os.Exit(1)
		}
	}()
	if *width < 1 || *width > 64 {
		fmt.Fprintf(os.Stderr, "busenc: width %d out of range [1,64]\n", *width)
		os.Exit(2)
	}
	if *n < 4 {
		fmt.Fprintf(os.Stderr, "busenc: stream length %d too short (need >= 4)\n", *n)
		os.Exit(2)
	}
	if *nZones < 1 {
		fmt.Fprintf(os.Stderr, "busenc: zone count %d must be positive\n", *nZones)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	var stream []uint64
	switch *streamKind {
	case "random":
		stream = trace.Uniform(*n, *width, rng)
	case "sequential":
		stream = trace.Sequential(*n, *width, 0x100)
	case "zones":
		var zs []trace.ZoneSpec
		for i := 0; i < *nZones; i++ {
			zs = append(zs, trace.ZoneSpec{Base: uint64(0x1000 * (i + 1) * 7), Length: 256})
		}
		stream = trace.InterleavedZones(*n, *width, zs)
	case "correlated":
		stream = trace.BlockCorrelated(*n, *width, 4, 4, 0.92, rng)
	default:
		fmt.Fprintf(os.Stderr, "busenc: unknown stream %q\n", *streamKind)
		os.Exit(2)
	}
	train, test := stream[:len(stream)/2], stream[len(stream)/2:]

	codes := []bus.Encoder{
		&bus.Raw{Width: *width},
		&bus.BusInvert{Width: *width},
		&bus.GrayCode{Width: *width},
		&bus.T0{Width: *width},
		bus.NewWorkingZone(*width, 4, 10),
		bus.TrainBeach(train, *width, 4, 4),
	}
	fmt.Printf("stream=%s width=%d words=%d\n\n", *streamKind, *width, len(test))
	fmt.Printf("%-14s %8s %12s %10s\n", "code", "lines", "transitions", "per word")
	for _, e := range codes {
		tr := bus.Transitions(e, test)
		fmt.Printf("%-14s %8d %12d %10.3f\n", e.Name(), e.BusWidth(), tr,
			float64(tr)/float64(len(test)-1))
	}
}
