// Command benchcompare diffs two BENCH_<date>.json snapshots (see
// cmd/benchjson) and reports per-benchmark deltas, flagging regressions
// beyond a threshold. Timing deltas are advisory only — shared-runner
// timings are too noisy for a hard gate — but allocations are
// deterministic: when the two snapshots cover the same workload shape
// (equal short_workload and gomaxprocs), an allocs_per_op increase
// beyond the threshold fails the run with exit code 1. A timing
// regression never does.
//
// Usage:
//
//	benchcompare                    # two newest BENCH_*.json in the cwd
//	benchcompare -old A.json -new B.json
//	benchcompare -threshold 15      # regression cutoff in percent
//
// When GITHUB_STEP_SUMMARY is set (GitHub Actions), the markdown table
// is also appended there.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type entry struct {
	Name        string  `json:"name"`
	Variant     string  `json:"variant"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Speedup     float64 `json:"speedup_vs_serial"`
}

type snapshot struct {
	Date       string  `json:"date"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Short      bool    `json:"short_workload"`
	Note       string  `json:"note"`
	Results    []entry `json:"results"`
}

func main() {
	oldPath := flag.String("old", "", "baseline snapshot (default: second-newest BENCH_*.json)")
	newPath := flag.String("new", "", "candidate snapshot (default: newest BENCH_*.json)")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		files, _ := filepath.Glob("BENCH_*.json")
		sort.Strings(files) // dates are ISO, lexical == chronological
		// With -new given, the baseline defaults to the newest checked-in
		// snapshot; with neither flag, compare the two newest snapshots.
		need := 1
		if *newPath == "" {
			need = 2
		}
		if len(files) < need {
			// Too few snapshots is the normal state of a fresh
			// checkout — nothing to compare, nothing to report.
			fmt.Println("benchcompare: not enough BENCH_*.json snapshots, nothing to compare")
			return
		}
		if *newPath == "" {
			*newPath = files[len(files)-1]
			files = files[:len(files)-1]
		}
		if *oldPath == "" {
			*oldPath = files[len(files)-1]
		}
	}
	oldSnap, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark compare: %s → %s\n\n", filepath.Base(*oldPath), filepath.Base(*newPath))
	comparable := oldSnap.Short == newSnap.Short && oldSnap.GOMAXPROCS == newSnap.GOMAXPROCS
	if !comparable {
		fmt.Fprintf(&b, "> ⚠️ snapshots differ in workload/host shape (short %v→%v, gomaxprocs %d→%d); deltas are indicative only and the alloc gate is off\n\n",
			oldSnap.Short, newSnap.Short, oldSnap.GOMAXPROCS, newSnap.GOMAXPROCS)
	}
	b.WriteString("| benchmark | old ns/op | new ns/op | delta | allocs old→new | |\n")
	b.WriteString("|---|---:|---:|---:|---:|---|\n")

	oldBy := make(map[string]entry, len(oldSnap.Results))
	for _, e := range oldSnap.Results {
		oldBy[e.Name] = e
	}
	regressions, allocRegressions := 0, 0
	for _, ne := range newSnap.Results {
		oe, ok := oldBy[ne.Name]
		if !ok {
			fmt.Fprintf(&b, "| %s | — | %.0f | new | —→%d | 🆕 |\n", ne.Name, ne.NsPerOp, ne.AllocsPerOp)
			continue
		}
		deltaPct := 0.0
		if oe.NsPerOp > 0 {
			deltaPct = (ne.NsPerOp - oe.NsPerOp) / oe.NsPerOp * 100
		}
		allocPct := 0.0
		if oe.AllocsPerOp > 0 {
			allocPct = float64(ne.AllocsPerOp-oe.AllocsPerOp) / float64(oe.AllocsPerOp) * 100
		}
		mark := ""
		switch {
		case allocPct > *threshold:
			mark = fmt.Sprintf("❌ allocs +%.1f%%", allocPct)
			allocRegressions++
		case deltaPct > *threshold:
			mark = fmt.Sprintf("🔺 regression >%g%%", *threshold)
			regressions++
		case deltaPct < -*threshold:
			mark = "🟢 improvement"
		}
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %+.1f%% | %d→%d | %s |\n",
			ne.Name, oe.NsPerOp, ne.NsPerOp, deltaPct, oe.AllocsPerOp, ne.AllocsPerOp, mark)
	}
	// Entries present in the baseline but absent from the candidate are
	// annotated, never gated: a benchmark disappearing usually means the
	// workload set changed on purpose, but a silent drop would otherwise
	// read as "no regression". The "/mp" multi-core entries deserve their
	// own wording — they exist only on multi-core hosts, so their absence
	// on a single-core runner means scaling went unmeasured, not that it
	// regressed.
	newNames := make(map[string]bool, len(newSnap.Results))
	for _, e := range newSnap.Results {
		newNames[e.Name] = true
	}
	for _, oe := range oldSnap.Results {
		if newNames[oe.Name] {
			continue
		}
		if strings.HasSuffix(oe.Name, "/mp") {
			fmt.Fprintf(&b, "| %s | %.0f | — | gone | — | ⚠️ multi-core pass absent (single-core host?) — scaling unmeasured, not regressed |\n",
				oe.Name, oe.NsPerOp)
		} else {
			fmt.Fprintf(&b, "| %s | %.0f | — | gone | — | ⚠️ vanished from new snapshot |\n", oe.Name, oe.NsPerOp)
		}
	}
	// Timing deltas from shared runners jitter run to run; allocation
	// counts do not. Keep readers from acting on noise.
	fmt.Fprintf(&b, "\n> Variance note: ns/op deltas within ±%g%% are indistinguishable from run-to-run noise on shared runners "+
		"(benchstat would call them ~). Treat only larger, repeated timing moves as real; allocs_per_op is deterministic and is what the gate enforces.\n", *threshold)
	if newSnap.Note != "" {
		fmt.Fprintf(&b, "\n> %s\n", newSnap.Note)
	}
	if regressions > 0 {
		fmt.Fprintf(&b, "\n**%d benchmark(s) regressed more than %g%% in time.** Advisory; investigate before the trend compounds.\n", regressions, *threshold)
	}
	gate := allocRegressions > 0 && comparable
	if allocRegressions > 0 {
		if gate {
			fmt.Fprintf(&b, "\n**%d benchmark(s) allocate more than %g%% more per op — failing.** Allocations are deterministic; this is a real regression, not runner noise.\n", allocRegressions, *threshold)
		} else {
			fmt.Fprintf(&b, "\n**%d benchmark(s) allocate more than %g%% more per op.** Snapshot shapes differ, so the alloc gate is advisory here.\n", allocRegressions, *threshold)
		}
	}

	out := b.String()
	fmt.Print(out)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			_, _ = f.WriteString(out + "\n")
			_ = f.Close()
		}
	}
	if gate {
		os.Exit(1)
	}
}

func load(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(1)
}
