// Command powerd serves the hlpower estimation engines over HTTP with
// the full resilience stack: per-request budgets, retry with jittered
// backoff, per-subsystem circuit breakers, bounded admission with load
// shedding, and graceful drain on SIGTERM.
//
// Usage:
//
//	powerd -addr :8433 -workers 4 -queue 64 -timeout 5s
//
// Chaos testing: -fault-prob injects random budget trips into every
// request's estimation path, exercising the breakers end to end.
//
// Cluster mode: give every node an identity and the full member list
// (its own entry included — all nodes can share one list):
//
//	powerd -addr :8433 -node n0=http://host0:8433 \
//	    -peers n0=http://host0:8433,n1=http://host1:8433,n2=http://host2:8433
//
// Nodes forward each request to the consistent-hash owner of its
// content key, so the ring shares one logical estimate cache; a dead
// or slow owner sheds cleanly to local compute.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served only when -pprof is set
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hlpower/internal/budget"
	"hlpower/internal/cluster"
	"hlpower/internal/jobs"
	"hlpower/internal/powerd"
)

func main() {
	var (
		addr      = flag.String("addr", ":8433", "listen address")
		workers   = flag.Int("workers", 0, "concurrent estimation slots (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "max queued requests before shedding with 429")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request budget deadline")
		maxSteps  = flag.Int64("max-steps", 50_000_000, "per-request step allowance")
		hedge     = flag.Duration("hedge", 0, "hedged-backup delay for simulate requests (0 = off)")
		faultProb = flag.Float64("fault-prob", 0, "chaos: per-check fault injection probability")
		faultSeed = flag.Int64("fault-seed", 1, "chaos: fault plan seed")
		memoBytes = flag.Int64("memo-bytes", 0, "estimate-cache byte budget (0 = 64 MiB default, negative = disable memoization)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
		nodeSpec  = flag.String("node", "", "cluster mode: this node's id=url (empty = single-node)")
		peerSpec  = flag.String("peers", "", "cluster mode: comma-separated id=url member list (may include this node)")

		jobDir      = flag.String("job-dir", "", "directory for optimization-job checkpoints (empty = in-memory, lost on restart)")
		jobWorkers  = flag.Int("job-workers", 0, "concurrent optimization jobs (0 = default 2)")
		jobQueue    = flag.Int("job-queue", 0, "queued optimization jobs before shedding with 429 (0 = default 16)")
		jobStall    = flag.Duration("job-stall", 0, "per-candidate watchdog timeout (0 = default 30s)")
		jobCkpt     = flag.Int("job-checkpoint-every", 0, "candidates between job checkpoints (0 = default 8)")
		jobSteps    = flag.Int64("job-steps", 0, "per-candidate step budget (0 = -max-steps)")
		jobMaxSteps = flag.Int64("job-total-steps", 0, "aggregate step ceiling per job (0 = unlimited)")

		codegenAfter = flag.Int("codegen-after", 0, "requests before a hot netlist is promoted to the specialized codegen kernel (0 = default 8, negative = disable)")
	)
	var drainTimeout time.Duration
	flag.DurationVar(&drainTimeout, "drain-timeout", 30*time.Second, "graceful-drain window: max wait for in-flight requests on shutdown, and the Retry-After hint sent mid-drain")
	flag.DurationVar(&drainTimeout, "drain-wait", 30*time.Second, "deprecated alias for -drain-timeout")
	flag.Parse()

	cfg := powerd.DefaultConfig()
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.QueueDepth = *queue
	cfg.RequestTimeout = *timeout
	cfg.MaxSteps = *maxSteps
	cfg.HedgeDelay = *hedge
	cfg.MemoMaxBytes = *memoBytes
	cfg.DrainTimeout = drainTimeout
	cfg.JobWorkers = *jobWorkers
	cfg.JobQueueDepth = *jobQueue
	cfg.JobStallTimeout = *jobStall
	cfg.JobCheckpointEvery = *jobCkpt
	cfg.JobEvalSteps = *jobSteps
	cfg.JobMaxTotalSteps = *jobMaxSteps
	cfg.CodegenAfter = *codegenAfter
	if *jobDir != "" {
		store, err := jobs.NewFileStore(*jobDir)
		if err != nil {
			log.Fatalf("-job-dir: %v", err)
		}
		cfg.JobStore = store
	}

	if *pprofAddr != "" {
		// Importing net/http/pprof registers its handlers on the default
		// mux only; the estimation mux stays clean, and the profiler is
		// reachable solely on its own (typically loopback) listener.
		go func() {
			psrv := &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	srv := powerd.NewServer(cfg)
	if *nodeSpec != "" {
		self, err := parsePeer(*nodeSpec)
		if err != nil {
			log.Fatalf("-node: %v", err)
		}
		peers, err := parsePeers(*peerSpec)
		if err != nil {
			log.Fatalf("-peers: %v", err)
		}
		if err := srv.EnableCluster(cluster.Config{Self: self, Peers: peers}); err != nil {
			log.Fatalf("cluster: %v", err)
		}
		log.Printf("cluster mode: node %s, ring %v", self.ID, srv.Cluster().Members())
	} else if *peerSpec != "" {
		log.Fatal("-peers requires -node")
	}
	if *faultProb > 0 {
		srv.SetFaultPlan(budget.FaultPlan{Prob: *faultProb, Seed: *faultSeed})
		log.Printf("chaos armed: fault probability %.3f (seed %d)", *faultProb, *faultSeed)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("powerd listening on %s (workers %d, queue %d, timeout %s)",
		*addr, cfg.Workers, cfg.QueueDepth, cfg.RequestTimeout)

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("signal received; draining (max %s)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop admitting estimation work first, then close listeners: late
	// arrivals between the two get a clean 503 instead of a reset.
	drainErr := srv.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, drainErr)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}

// parsePeer parses one id=url member spec.
func parsePeer(spec string) (cluster.Peer, error) {
	id, url, ok := strings.Cut(spec, "=")
	if !ok || id == "" || url == "" {
		return cluster.Peer{}, fmt.Errorf("want id=url, got %q", spec)
	}
	return cluster.Peer{ID: id, URL: strings.TrimSuffix(url, "/")}, nil
}

// parsePeers parses the comma-separated member list.
func parsePeers(spec string) ([]cluster.Peer, error) {
	if spec == "" {
		return nil, nil
	}
	var peers []cluster.Peer
	for _, part := range strings.Split(spec, ",") {
		p, err := parsePeer(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		peers = append(peers, p)
	}
	return peers, nil
}
