// Command repro regenerates the paper's tables and quantitative claims.
//
// Usage:
//
//	repro                 # run every experiment
//	repro -j 8            # run experiments concurrently with 8 workers
//	repro -j 0            # one worker per CPU (nonpositive = auto)
//	repro -e E16          # run one experiment
//	repro -list           # list experiment ids and titles
//	repro -j 8 -markdown  # regenerate EXPERIMENTS.md content
//
// Parallelism has two levels: -j fans out whole experiments, and the
// E2–E5 sweeps additionally fan out per configuration inside each
// experiment. To avoid multiplicative oversubscription the inner width
// is GOMAXPROCS divided by the (clamped) -j value — so "-j 1" gives
// the in-experiment sweeps the whole machine, and "-j GOMAXPROCS"
// runs experiments wide with serial sweeps inside. Results are
// independent of both widths; only wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hlpower/internal/budget"
	"hlpower/internal/experiments"
	"hlpower/internal/par"
)

func main() {
	one := flag.String("e", "", "run a single experiment id (e.g. E1)")
	list := flag.Bool("list", false, "list experiments")
	parallel := flag.Int("j", 1, "experiment-level workers; nonpositive means one per CPU")
	markdown := flag.Bool("markdown", false, "emit EXPERIMENTS.md content instead of plain reports")
	flag.Parse()
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "repro: internal error: %v\n", r)
			os.Exit(1)
		}
	}()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-5s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := experiments.IDs()
	if *one != "" {
		ids = []string{*one}
	}

	// Clamp the worker count (nonpositive -> GOMAXPROCS) and divide the
	// machine between experiment-level and in-experiment parallelism.
	outer := par.Workers(*parallel)
	if outer > len(ids) {
		outer = len(ids)
	}
	inner := runtime.GOMAXPROCS(0) / outer
	if inner < 1 {
		inner = 1
	}
	experiments.SetParallelism(inner)

	// One task per experiment; failures are data (reported, sweep
	// continues), so tasks never return errors and nothing is canceled.
	type outcome struct {
		rep *experiments.Report
		err error
	}
	results, _ := par.Map(nil, outer, len(ids), func(i int, _ *budget.Budget) (outcome, error) {
		rep, err := experiments.Run(ids[i])
		return outcome{rep, err}, nil
	})

	failed := false
	var reports []*experiments.Report
	for i, r := range results {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v (continuing)\n", ids[i], r.err)
			failed = true
			continue
		}
		reports = append(reports, r.rep)
	}
	emit(reports, *markdown)
	if failed {
		os.Exit(1)
	}
}

// emit prints reports as plain text or as the EXPERIMENTS.md document.
func emit(reports []*experiments.Report, markdown bool) {
	if markdown {
		fmt.Print(experiments.Markdown(reports))
		return
	}
	for _, rep := range reports {
		fmt.Printf("=== %s: %s ===\n%s\n", rep.ID, rep.Title, rep.Text)
	}
}
