// Command repro regenerates the paper's tables and quantitative claims.
//
// Usage:
//
//	repro                 # run every experiment
//	repro -j 8            # run them concurrently
//	repro -e E16          # run one experiment
//	repro -list           # list experiment ids and titles
//	repro -j 8 -markdown  # regenerate EXPERIMENTS.md content
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"hlpower/internal/experiments"
)

func main() {
	one := flag.String("e", "", "run a single experiment id (e.g. E1)")
	list := flag.Bool("list", false, "list experiments")
	parallel := flag.Int("j", 1, "run experiments concurrently with this many workers")
	markdown := flag.Bool("markdown", false, "emit EXPERIMENTS.md content instead of plain reports")
	flag.Parse()
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "repro: internal error: %v\n", r)
			os.Exit(1)
		}
	}()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-5s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := experiments.IDs()
	if *one != "" {
		ids = []string{*one}
	}
	if *parallel < 2 || len(ids) < 2 {
		var reports []*experiments.Report
		failed := false
		for _, id := range ids {
			rep, err := experiments.Run(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "repro: %s: %v (continuing)\n", id, err)
				failed = true
				continue
			}
			reports = append(reports, rep)
		}
		emit(reports, *markdown)
		if failed {
			os.Exit(1)
		}
		return
	}
	// Concurrent execution with ordered output: a worker pool fills one
	// result slot per experiment; printing happens in index order.
	type outcome struct {
		rep *experiments.Report
		err error
	}
	results := make([]outcome, len(ids))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				rep, err := experiments.Run(ids[i])
				results[i] = outcome{rep, err}
			}
		}()
	}
	for i := range ids {
		work <- i
	}
	close(work)
	wg.Wait()
	failed := false
	var reports []*experiments.Report
	for i, r := range results {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v (continuing)\n", ids[i], r.err)
			failed = true
			continue
		}
		reports = append(reports, r.rep)
	}
	emit(reports, *markdown)
	if failed {
		os.Exit(1)
	}
}

// emit prints reports as plain text or as the EXPERIMENTS.md document.
func emit(reports []*experiments.Report, markdown bool) {
	if markdown {
		fmt.Print(experiments.Markdown(reports))
		return
	}
	for _, rep := range reports {
		fmt.Printf("=== %s: %s ===\n%s\n", rep.ID, rep.Title, rep.Text)
	}
}
