// Command dpmsim runs the §III-B shutdown policies over a synthetic
// event-driven workload and prints the power/latency comparison.
//
// Usage:
//
//	dpmsim -sessions 100 -longidle 300 -trestart 0.15
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hlpower/internal/dpm"
)

func main() {
	sessions := flag.Int("sessions", 60, "number of activity sessions")
	bursts := flag.Int("bursts", 6, "activity bursts per session")
	meanActive := flag.Float64("active", 1.0, "mean activity burst length")
	shortIdle := flag.Float64("shortidle", 0.4, "mean intra-session idle")
	longIdle := flag.Float64("longidle", 300, "mean inter-session idle")
	tRestart := flag.Float64("trestart", 0.15, "device restart latency")
	eRestart := flag.Float64("erestart", 0.9, "device restart energy")
	timeout := flag.Float64("timeout", 5, "static policy timeout")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "dpmsim: internal error: %v\n", r)
			os.Exit(1)
		}
	}()
	if *sessions < 1 || *bursts < 1 {
		fmt.Fprintf(os.Stderr, "dpmsim: sessions (%d) and bursts (%d) must be positive\n",
			*sessions, *bursts)
		os.Exit(2)
	}

	dev := dpm.DefaultDevice()
	dev.TRestart = *tRestart
	dev.ERestart = *eRestart

	params := dpm.DefaultWorkload()
	params.Sessions = *sessions
	params.BurstsPer = *bursts
	params.MeanActive = *meanActive
	params.MeanShortIdle = *shortIdle
	params.MeanLongIdle = *longIdle

	rng := rand.New(rand.NewSource(*seed))
	w := dpm.Generate(params, rng)
	on := dpm.Simulate(dev, dpm.AlwaysOn{}, w)

	fmt.Printf("periods=%d  total=%.0f  idle=%.0f%%  bound=%.1fx  breakeven=%.2f\n\n",
		len(w), on.TotalTime, 100*on.IdleTime/on.TotalTime,
		dpm.MaxImprovement(w), dev.Breakeven())
	fmt.Printf("%-24s %10s %12s %14s %10s\n", "policy", "energy", "improvement", "delay penalty", "shutdowns")
	for _, pol := range []dpm.Policy{
		dpm.AlwaysOn{},
		&dpm.StaticTimeout{T: *timeout},
		&dpm.Threshold{ActiveThreshold: *meanActive / 2},
		&dpm.Regression{Dev: dev},
		&dpm.HwangWu{Dev: dev, Prewake: true},
		&dpm.Oracle{Dev: dev, Workload: w},
	} {
		res := dpm.Simulate(dev, pol, w)
		fmt.Printf("%-24s %10.1f %11.2fx %13.1f%% %10d\n",
			pol.Name(), res.Energy, dpm.Improvement(on, res), 100*res.DelayPenalty, res.Shutdowns)
	}
}
