module hlpower

go 1.22
