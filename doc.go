// Package hlpower is a from-scratch Go reproduction of "High-Level Power
// Modeling, Estimation, and Optimization" (Macii, Pedram, Somenzi; DAC
// 1997 / IEEE TCAD 17(11), 1998): every estimation model and every
// optimization technique the survey covers, implemented on substrates
// built in this repository — a gate-level netlist simulator with
// switched-capacitance power metering, a BDD package, a two-level logic
// minimizer, an FSM synthesis path, and a small RISC processor simulator.
//
// The root package is a facade over the implementation packages; it
// re-exports the main entry points so a downstream user can drive the
// common flows without reaching into internal paths. The full surface
// lives in the internal packages (one per subsystem — see DESIGN.md for
// the inventory):
//
//   - power estimation: entropy (information-theoretic, §II-B1),
//     complexity (§II-B2), macromodel (RT-level macro-models, §II-C),
//     memmodel (Liu–Svensson parametric models), isa (instruction-level
//     software estimation, §II-A)
//   - power optimization: dpm (predictive shutdown, §III-B), cdfg
//     (behavioral transformations and scheduling, §III-C/D), hls
//     (allocation/binding, §III-E), vsched (multi-voltage scheduling,
//     §III-F), bus (encodings, §III-G), fsm (state encoding, §III-H),
//     lopt (precomputation / clock gating / guarded evaluation /
//     retiming, §III-I/J)
//   - substrates: logic, sim, bdd, cover, rtlib, trace, stats, bitutil
//   - core: the Fig. 1 design-improvement loop tying them together
//   - experiments: regenerates Table I and every quantitative claim
//     (run via cmd/repro or the root benchmarks)
package hlpower
